// Command mdcheck validates relative links in the repository's Markdown
// files: every [text](target) whose target is not an external URL or a bare
// fragment must point at a file that exists.
//
// Usage:
//
//	go run ./scripts/mdcheck [file.md ...]
//
// With no arguments it checks every *.md in the current directory tree,
// skipping hidden directories and testdata. External schemes (http:, https:,
// mailto:) and pure #anchors are ignored; fragments on relative targets are
// stripped before the existence check. Broken links are printed one per line
// and the exit status is non-zero if any are found.
package main

import (
	"fmt"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline Markdown links, capturing the target. It
// deliberately excludes images' extra processing (the ! prefix still parses
// as a link and is checked the same way).
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		var err error
		files, err = findMarkdown(".")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdcheck: %v\n", err)
			os.Exit(2)
		}
	}
	bad := 0
	for _, f := range files {
		bad += checkFile(f)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "mdcheck: %d broken link(s)\n", bad)
		os.Exit(1)
	}
}

// findMarkdown walks root collecting *.md paths, skipping hidden
// directories and testdata.
func findMarkdown(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

// checkFile scans one Markdown file and returns the number of broken
// relative links.
func checkFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdcheck: %v\n", err)
		os.Exit(2)
	}
	bad := 0
	dir := filepath.Dir(path)
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skipTarget(target) {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			if dec, err := url.PathUnescape(target); err == nil {
				target = dec
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				fmt.Printf("%s:%d: broken link %q\n", path, i+1, m[1])
				bad++
			}
		}
	}
	return bad
}

// skipTarget reports whether a link target is out of scope for the checker:
// external URLs and in-page anchors.
func skipTarget(t string) bool {
	return strings.Contains(t, "://") ||
		strings.HasPrefix(t, "mailto:") ||
		strings.HasPrefix(t, "#")
}
