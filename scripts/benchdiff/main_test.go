package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPolicyDirectionAndTolerance(t *testing.T) {
	cases := []struct {
		key         string
		lowerBetter bool
		tol         float64
	}{
		{"send_allocs_per_packet", true, 0},
		{"flowscale_100k_allocs_per_packet", true, 0},
		{"campaign_dumbbell100_agg_goodput_mbps", false, 0.001},
		{"campaign_dumbbell100_jain_index", false, 0.001},
		{"campaign_dumbbell100_flows_ok", false, 0.001},
		{"campaign_star32_p99_ack_us", true, 0.001},
		{"loopback_gso_mbps", false, 0.30},
		{"sim_ns_per_event", true, 0.30},
		{"handshake_auth_us", true, 0.30},
		{"flowscale_100k_p99_ack_us", true, 0.30},
		{"flowscale_100k_peak_goroutines", true, 0.30},
		{"syscalls_per_packet", true, 0.30},
	}
	for _, tc := range cases {
		lower, tol, _, known := policy(tc.key)
		if !known {
			t.Fatalf("policy(%q) unknown", tc.key)
		}
		if lower != tc.lowerBetter || tol != tc.tol {
			t.Fatalf("policy(%q) = lower=%v tol=%v, want lower=%v tol=%v",
				tc.key, lower, tol, tc.lowerBetter, tc.tol)
		}
	}
	if _, _, _, known := policy("mystery_metric"); known {
		t.Fatal("unknown keys must have no policy (never fail the gate)")
	}
}

func TestCompareCatchesInjectedCampaignGoodputRegression(t *testing.T) {
	// The acceptance scenario: a 10% goodput drop on a deterministic
	// campaign metric must fail; the identical value must pass.
	key := "campaign_dumbbell100_agg_goodput_mbps"
	if !compare(key, 161.2, 145.0).regressed {
		t.Fatal("10% campaign goodput drop must regress")
	}
	if compare(key, 161.2, 161.2).regressed {
		t.Fatal("identical campaign goodput must pass")
	}
	if compare(key, 161.2, 180.0).regressed {
		t.Fatal("improvement must pass")
	}
	// Campaign tolerance is tight: even a 1% drop fails.
	if !compare(key, 161.2, 159.0).regressed {
		t.Fatal("1% campaign goodput drop must regress (deterministic metric)")
	}
}

func TestCompareAllocsAreExact(t *testing.T) {
	if !compare("send_allocs_per_packet", 0, 1).regressed {
		t.Fatal("any alloc increase from zero must regress")
	}
	if compare("send_allocs_per_packet", 0, 0).regressed {
		t.Fatal("zero allocs must pass")
	}
	if !compare("flowscale_100k_allocs_per_packet", 26.16, 26.17).regressed {
		t.Fatal("alloc counts have zero tolerance")
	}
}

func TestCompareWallClockTolerance(t *testing.T) {
	// Machine-dependent numbers only fail on collapses beyond 30%.
	if compare("loopback_mbps", 837.4, 700).regressed {
		t.Fatal("16% throughput dip is within wall-clock tolerance")
	}
	if !compare("loopback_mbps", 837.4, 500).regressed {
		t.Fatal("40% throughput collapse must regress")
	}
	if compare("sim_ns_per_event", 62.9, 75).regressed {
		t.Fatal("19% latency rise is within wall-clock tolerance")
	}
	if !compare("sim_ns_per_event", 62.9, 100).regressed {
		t.Fatal("59% latency rise must regress")
	}
}

func TestLoadMetricsSnapshotAndHistory(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.json")
	if err := os.WriteFile(snap, []byte(`{
		"loopback_mbps": 800,
		"loopback_gso_mbps": null,
		"campaign_dumbbell100_flows_ok": 100
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadMetrics(snap)
	if err != nil {
		t.Fatal(err)
	}
	if m["loopback_mbps"] != 800 || m["campaign_dumbbell100_flows_ok"] != 100 {
		t.Fatalf("snapshot metrics = %v", m)
	}
	if _, ok := m["loopback_gso_mbps"]; ok {
		t.Fatal("null metrics must be dropped, not compared")
	}

	hist := filepath.Join(dir, "hist.jsonl")
	if err := os.WriteFile(hist, []byte(
		`{"ts":"2026-08-01T00:00:00Z","metrics":{"loopback_mbps":700}}`+"\n"+
			`{"ts":"2026-08-09T00:00:00Z","metrics":{"loopback_mbps":810,"campaign_star32_jain_index":1}}`+"\n",
	), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err = loadMetrics(hist)
	if err != nil {
		t.Fatal(err)
	}
	if m["loopback_mbps"] != 810 || m["campaign_star32_jain_index"] != 1 {
		t.Fatalf("history must yield the newest line, got %v", m)
	}
}
