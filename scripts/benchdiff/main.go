// Command benchdiff is the CI performance-regression gate: it compares a
// current metrics snapshot against a pinned baseline and exits non-zero when
// any tracked number regresses beyond its tolerance.
//
// Usage:
//
//	go run ./scripts/benchdiff -baseline BENCH_baseline.json -current FILE [-v]
//
// Both files hold flat JSON objects mapping metric name → number (null
// values are skipped — a kernel without offload reports null for the GSO
// figures). The current file may instead be a BENCH_history.jsonl stream of
// {"ts": ..., "metrics": {...}} lines, in which case the newest line is
// compared.
//
// Per-key policy, derived from the key name:
//
//   - keys containing "allocs" are lower-is-better with zero tolerance:
//     the repository's alloc gates are exact, any increase fails;
//   - campaign_* keys come from the deterministic virtual-clock campaigns
//     (same seed ⇒ identical numbers on every machine), so they carry a
//     0.1% tolerance — direction by suffix: p99/latency keys lower-better,
//     goodput/jain/flows_ok higher-better;
//   - throughput keys (…mbps) and fairness (…jain…) are higher-is-better
//     with 30% tolerance — wall-clock numbers are machine-dependent, the
//     gate only catches collapses;
//   - time/count keys (…ns…, …us…, …p99…, …goroutines, …syscalls…) are
//     lower-is-better with the same 30% tolerance;
//   - keys matching no rule, or missing from either side, are reported
//     (with -v) but never fail the gate: adding a new metric must not
//     break CI before the baseline learns it.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "pinned baseline metrics JSON")
	current := flag.String("current", "", "current metrics JSON (or history JSONL; newest line used)")
	verbose := flag.Bool("v", false, "print every comparison, not just regressions")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current FILE is required")
		os.Exit(2)
	}
	base, err := loadMetrics(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadMetrics(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	regressions := 0
	for _, k := range sortedKeys(base) {
		b := base[k]
		c, ok := cur[k]
		if !ok {
			if *verbose {
				fmt.Printf("skip  %-42s baseline=%-12g (not in current)\n", k, b)
			}
			continue
		}
		verdict := compare(k, b, c)
		if verdict.regressed {
			regressions++
			fmt.Printf("FAIL  %-42s baseline=%-12g current=%-12g (%s)\n", k, b, c, verdict.rule)
		} else if *verbose {
			fmt.Printf("ok    %-42s baseline=%-12g current=%-12g (%s)\n", k, b, c, verdict.rule)
		}
	}
	if *verbose {
		for _, k := range sortedKeys(cur) {
			if _, ok := base[k]; !ok {
				fmt.Printf("new   %-42s current=%-12g (not in baseline)\n", k, cur[k])
			}
		}
	}
	if regressions > 0 {
		fmt.Printf("benchdiff: %d regression(s) vs %s\n", regressions, *baseline)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d metric(s) within tolerance of %s\n", len(cur), *baseline)
}

// verdict is one metric comparison's outcome and the policy that decided it.
type verdict struct {
	regressed bool
	rule      string
}

// compare applies the key-derived policy to one (baseline, current) pair.
func compare(key string, base, cur float64) verdict {
	lowerBetter, tol, rule, known := policy(key)
	if !known {
		return verdict{false, "no policy"}
	}
	var bad bool
	switch {
	case base == 0:
		// Relative tolerance is meaningless at zero; compare absolutely.
		if lowerBetter {
			bad = cur > tol
		} else {
			bad = cur < -tol
		}
	case lowerBetter:
		bad = cur > base*(1+tol)
	default:
		bad = cur < base*(1-tol)
	}
	return verdict{bad, rule}
}

// policy maps a metric key to its regression rule: direction, relative
// tolerance and a human-readable rule name.
func policy(key string) (lowerBetter bool, tol float64, rule string, known bool) {
	switch {
	case strings.Contains(key, "allocs"):
		return true, 0, "allocs: exact, lower", true
	case strings.HasPrefix(key, "campaign_"):
		if strings.Contains(key, "p99") || strings.HasSuffix(key, "_us") {
			return true, 0.001, "campaign latency: ±0.1%, lower", true
		}
		return false, 0.001, "campaign: ±0.1%, higher", true
	case strings.Contains(key, "mbps"), strings.Contains(key, "jain"):
		return false, 0.30, "throughput: ±30%, higher", true
	case strings.Contains(key, "_ns"), strings.Contains(key, "_us"),
		strings.Contains(key, "p99"), strings.Contains(key, "goroutines"),
		strings.Contains(key, "syscalls"):
		return true, 0.30, "latency/count: ±30%, lower", true
	}
	return false, 0, "", false
}

// loadMetrics reads a flat metrics object, or the newest metrics line of a
// {"ts":...,"metrics":{...}} history stream. Null and non-numeric values are
// dropped.
func loadMetrics(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("%s: empty", path)
	}
	// Plain snapshot object (possibly pretty-printed across lines), or a
	// single history row.
	var obj map[string]any
	if err := json.Unmarshal(trimmed, &obj); err == nil {
		if m, ok := obj["metrics"].(map[string]any); ok {
			return numeric(m), nil
		}
		return numeric(obj), nil
	}
	// History stream: keep the last decodable line's metrics.
	var last map[string]any
	sc := bufio.NewScanner(bytes.NewReader(trimmed))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var row struct {
			Metrics map[string]any `json:"metrics"`
		}
		if err := json.Unmarshal(line, &row); err == nil && row.Metrics != nil {
			last = row.Metrics
		}
	}
	if last == nil {
		return nil, fmt.Errorf("%s: neither a metrics object nor a metrics history", path)
	}
	return numeric(last), nil
}

// numeric keeps the float-valued entries of a decoded JSON object.
func numeric(m map[string]any) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
