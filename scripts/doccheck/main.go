// Command doccheck enforces the repository's godoc policy: every exported
// identifier in the packages it is pointed at must carry a doc comment.
//
// Usage:
//
//	go run ./scripts/doccheck [package-dir ...]
//
// Each argument is a directory containing one Go package (test files are
// ignored). An exported top-level func or method needs a doc comment on the
// declaration; an exported const/var/type spec needs either its own doc
// comment, a trailing line comment, or a doc comment on the enclosing
// grouped declaration. Violations are printed one per line and the exit
// status is non-zero if any are found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck package-dir ...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range dirs {
		bad += checkDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

// checkDir parses every non-test Go file in dir and returns the number of
// undocumented exported identifiers found.
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	bad := 0
	for _, pkg := range pkgs {
		for name, file := range pkg.Files {
			bad += checkFile(fset, filepath.ToSlash(name), file)
		}
	}
	return bad
}

// checkFile reports undocumented exported declarations in one parsed file.
func checkFile(fset *token.FileSet, name string, file *ast.File) int {
	bad := 0
	report := func(pos token.Pos, what, ident string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: exported %s %s has no doc comment\n", name, p.Line, what, ident)
		bad++
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, id := range s.Names {
						if id.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(id.Pos(), "value", id.Name)
						}
					}
				}
			}
		}
	}
	return bad
}
