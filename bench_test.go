// Benchmarks regenerating the paper's tables and figures (DESIGN.md §3 maps
// each to its experiment). Simulation-backed results run at a reduced,
// deterministic scale and report their headline metric through
// b.ReportMetric; cmd/simbench prints the full series, and -full there runs
// the paper-scale parameters. Real-transport results (Table 3, Figs. 10,
// 14, 15) measure the actual UDP implementation on loopback.
//
// Run a single figure with e.g.:
//
//	go test -bench 'Fig2' -benchtime 1x
package udt_test

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"udt"
	"udt/internal/core"
	"udt/internal/experiments"
	"udt/internal/losslist"
	"udt/internal/netsim"
	"udt/internal/timing"
)

// newRcvBufferForBench builds a protocol receive buffer for the Fig. 10
// microbenchmark.
func newRcvBufferForBench(pkts, payload int) *core.RcvBuffer {
	return core.NewRcvBuffer(pkts, payload, 0)
}

// benchScale keeps simulator benches fast enough for -bench=./...
var benchScale = experiments.Scale{
	Rate: 50_000_000, Dur: 20 * netsim.Second, Warm: 8, MaxFlows: 8,
}

func BenchmarkTable1Increase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable2DiskDisk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.Table2DiskDisk(benchScale, 11)
		b.ReportMetric(cells[len(cells)-1].Mbps, "amsterdam-local-Mbps")
	}
}

func BenchmarkFig1StreamJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1StreamJoin(benchScale, 1)
		b.ReportMetric(r.UDTJoinMbps, "udt-join-Mbps")
		b.ReportMetric(r.TCPJoinMbps, "tcp-join-Mbps")
	}
}

func BenchmarkFig2Fairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig2Fairness(benchScale, 2)
		last := pts[len(pts)-1]
		b.ReportMetric(last.UDT, "udt-jain")
		b.ReportMetric(last.TCP, "tcp-jain")
	}
}

func BenchmarkFig3Concurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig3Concurrency(benchScale, 3)
		b.ReportMetric(pts[len(pts)-1].StdDevMbps, "stddev-Mbps")
	}
}

func BenchmarkFig4Stability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig4Stability(benchScale, 4)
		last := pts[len(pts)-1]
		b.ReportMetric(last.UDT, "udt-stability")
		b.ReportMetric(last.TCP, "tcp-stability")
	}
}

func BenchmarkFig5Friendliness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig5Friendliness(benchScale, 5)
		b.ReportMetric(pts[0].T, "T-at-1ms")
	}
}

func BenchmarkFig6RTTFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig6RTTFairness(benchScale, 6)
		b.ReportMetric(pts[len(pts)-1].Ratio, "ratio-at-max-rtt")
	}
}

func BenchmarkFig7FlowControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7FlowControl(benchScale, 7)
		b.ReportMetric(float64(r.LossWithFC), "loss-with-fc")
		b.ReportMetric(float64(r.LossWithoutFC), "loss-without-fc")
	}
}

func BenchmarkFig8LossPattern(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sizes := experiments.Fig8LossPattern(benchScale, 8)
		var max int64
		for _, n := range sizes {
			if n > max {
				max = n
			}
		}
		b.ReportMetric(float64(max), "largest-event-pkts")
	}
}

// BenchmarkFig9LossListAccess times the three loss-list operations on a
// list pre-loaded with a congestion-scale backlog — the paper's claim is
// ≈1 µs per access independent of backlog (Fig. 9).
func BenchmarkFig9LossListAccess(b *testing.B) {
	b.Run("insert", func(b *testing.B) {
		r := losslist.NewReceiver(1 << 20)
		seq := int32(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Insert(seq, seq+30)
			seq += 40
		}
	})
	b.Run("query", func(b *testing.B) {
		r := losslist.NewReceiver(1 << 20)
		for s := int32(0); s < 100_000; s += 40 {
			r.Insert(s, s+30)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Find(int32(i*37) % 100_000)
		}
	})
	b.Run("delete", func(b *testing.B) {
		r := losslist.NewReceiver(1 << 21)
		for s := int32(0); s < int32(b.N)*40+40; s += 40 {
			r.Insert(s, s+30)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Remove(int32(i * 40))
		}
	})
}

// BenchmarkAblationLossList compares the paper's range list against the
// strawman bitmap under the operation that hurts the bitmap: reassembling
// the loss report (§4.2).
func BenchmarkAblationLossList(b *testing.B) {
	const window = 1 << 16
	load := func(ins func(a, c int32)) {
		for s := int32(0); s < window-40; s += 40 {
			ins(s, s+30)
		}
	}
	b.Run("rangelist-report", func(b *testing.B) {
		r := losslist.NewReceiver(window * 2)
		load(r.Insert)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(r.Ranges()) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("bitmap-report", func(b *testing.B) {
		n := losslist.NewNaive(0, window)
		load(n.Insert)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(n.Ranges()) == 0 {
				b.Fatal("empty")
			}
		}
	})
}

func BenchmarkFig11SingleFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig11SingleFlow(benchScale, 9)
		b.ReportMetric(pts[2].UDTMbps, "amsterdam-udt-Mbps")
		b.ReportMetric(pts[2].TCPMbps, "amsterdam-tcp-Mbps")
	}
}

func BenchmarkFig12SharedLink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12SharedLink(benchScale, 10)
		b.ReportMetric(r.UDTMbps[2], "udt-110ms-Mbps")
		b.ReportMetric(r.TCPMbps[2], "tcp-110ms-Mbps")
	}
}

func BenchmarkFig13SmallTCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig13SmallTCP(benchScale, 11)
		b.ReportMetric(pts[0].TCPAggMbps, "tcp-agg-0-udt")
		b.ReportMetric(pts[len(pts)-1].TCPAggMbps, "tcp-agg-10-udt")
	}
}

func BenchmarkAblationSYN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.AblationSYN(benchScale, 12)
		b.ReportMetric(pts[0].SoloMbps, "solo-at-1ms-syn")
	}
}

func BenchmarkAblationMIMD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationMIMD(benchScale, 13)
		b.ReportMetric(r.AIMDJain, "aimd-jain")
		b.ReportMetric(r.MIMDJain, "mimd-jain")
	}
}

func BenchmarkAblationPacing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationPacing(benchScale, 14)
		b.ReportMetric(r.UDTMeanQueue, "udt-meanq-pkts")
		b.ReportMetric(r.TCPMeanQueue, "tcp-meanq-pkts")
	}
}

func BenchmarkAblationHSTCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.AblationHighSpeed(benchScale, 15)
		for _, p := range pts {
			b.ReportMetric(p.Ratio, p.Protocol+"-rtt-ratio")
		}
	}
}

// ---- real-transport benchmarks (loopback UDP) --------------------------

// loopbackTransfer pushes size bytes through a fresh loopback connection
// and returns the throughput in Mb/s plus the sender's stats.
func loopbackTransfer(b *testing.B, cfg *udt.Config, size int) (float64, udt.Stats) {
	b.Helper()
	ln, err := udt.Listen("127.0.0.1:0", cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	done := make(chan int64, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- 0
			return
		}
		defer c.Close()
		n, _ := io.Copy(io.Discard, c)
		done <- n
	}()
	cli, err := udt.Dial(ln.Addr().String(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(data)
	start := time.Now()
	if _, err := cli.Write(data); err != nil {
		b.Fatal(err)
	}
	for !cli.Drained() {
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := time.Since(start)
	st := cli.Stats()
	cli.Close()
	<-done
	return float64(size*8) / elapsed.Seconds() / 1e6, st
}

// BenchmarkFig14CPU measures memory-to-memory loopback throughput of the
// real implementation — the workload behind the paper's Fig. 14 CPU
// numbers — reporting goodput and protocol overhead. Offload is disabled
// so the number stays comparable across kernels (and with the historical
// baseline): this is the bare sendmmsg/recvmmsg datapath.
// BenchmarkLoopbackGSO measures the offloaded one.
func BenchmarkFig14CPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mbps, st := loopbackTransfer(b, &udt.Config{DisableOffload: true}, 32<<20)
		b.ReportMetric(mbps, "Mbps")
		b.ReportMetric(float64(st.PktsRetrans), "retrans")
	}
}

// BenchmarkLoopbackGSO is BenchmarkFig14CPU with segmentation offload
// live: data bursts leave as UDP_SEGMENT trains (one syscall, one kernel
// traversal for up to 44 packets) and arrive GRO-coalesced. The
// syscalls-per-packet metric is the direct measure of the §4.1
// amortization; on kernels without offload support it degrades to the
// sendmmsg path and the metric shows it.
func BenchmarkLoopbackGSO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mbps, st := loopbackTransfer(b, nil, 32<<20)
		b.ReportMetric(mbps, "Mbps")
		if st.PktsSent > 0 {
			b.ReportMetric(float64(st.SendSyscalls)/float64(st.PktsSent), "syscalls/pkt")
		}
	}
}

// BenchmarkLoopbackAEAD is BenchmarkLoopbackGSO with Secure UDT fully on:
// PSK-authenticated handshake, then every data packet sealed with
// ChaCha20-Poly1305 in the send arena and opened in place on receive. The
// delta against loopback_gso_mbps is the whole-stack crypto tax tracked in
// BENCH_baseline.json as aead_mbps.
func BenchmarkLoopbackAEAD(b *testing.B) {
	cfg := &udt.Config{PSK: []byte("bench loopback pre-shared key 32"), AEAD: true}
	for i := 0; i < b.N; i++ {
		mbps, st := loopbackTransfer(b, cfg, 32<<20)
		b.ReportMetric(mbps, "Mbps")
		if st.AuthRejects != 0 || st.ReplayDrops != 0 {
			b.Fatalf("clean loopback counted crypto rejects: %+v", st)
		}
	}
}

// BenchmarkLoopbackBatchSize sweeps Config.BatchSize — the burst claimed
// per sender-lock acquisition, the sendmmsg batch, and the GSO train
// ceiling (kernel-capped at 44 segments).
func BenchmarkLoopbackBatchSize(b *testing.B) {
	for _, batch := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mbps, st := loopbackTransfer(b, &udt.Config{BatchSize: batch}, 32<<20)
				b.ReportMetric(mbps, "Mbps")
				if st.PktsSent > 0 {
					b.ReportMetric(float64(st.SendSyscalls)/float64(st.PktsSent), "syscalls/pkt")
				}
			}
		})
	}
}

// BenchmarkLoopbackReusePort4 drives four private-socket senders at a
// 4-shard SO_REUSEPORT listener group: four sockets, four read loops,
// four demultiplexers, spread across cores by the kernel's flow hash.
// Reports aggregate goodput; on platforms without socket groups the
// config degrades to one socket and this converges to the single-socket
// number.
func BenchmarkLoopbackReusePort4(b *testing.B) {
	const shards = 4
	const perFlow = 16 << 20
	cfg := &udt.Config{ReusePortShards: shards}
	for i := 0; i < b.N; i++ {
		ln, err := udt.Listen("127.0.0.1:0", cfg)
		if err != nil {
			b.Fatal(err)
		}
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				go func(c *udt.Conn) {
					defer c.Close()
					io.Copy(io.Discard, c) //nolint:errcheck
				}(c)
			}
		}()
		var wg sync.WaitGroup
		start := time.Now()
		for f := 0; f < shards; f++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				cli, err := udt.Dial(ln.Addr().String(), nil)
				if err != nil {
					b.Error(err)
					return
				}
				defer cli.Close()
				data := make([]byte, perFlow)
				rand.New(rand.NewSource(int64(f))).Read(data)
				if _, err := cli.Write(data); err != nil {
					b.Error(err)
					return
				}
				for !cli.Drained() {
					time.Sleep(2 * time.Millisecond)
				}
			}(f)
		}
		wg.Wait()
		elapsed := time.Since(start)
		ln.Close()
		b.ReportMetric(float64(shards*perFlow*8)/elapsed.Seconds()/1e6, "Mbps")
	}
}

// BenchmarkSendFileZC measures the zero-copy file path: an mmap-backed
// SendFileZC against a discarding RecvFile over loopback.
func BenchmarkSendFileZC(b *testing.B) {
	const size = 32 << 20
	path := b.TempDir() + "/payload.bin"
	data := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(data)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ln, err := udt.Listen("127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan int64, 1)
		go func() {
			c, err := ln.Accept()
			if err != nil {
				done <- 0
				return
			}
			n, _ := c.RecvFile(io.Discard)
			// No Close here: the sender is still draining ACKs for the tail;
			// listener teardown closes the flow once the sender is done.
			done <- n
		}()
		cli, err := udt.Dial(ln.Addr().String(), nil)
		if err != nil {
			b.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		n, err := cli.SendFileZC(f)
		if err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		f.Close()
		cli.Close()
		if got := <-done; got != size || n != size {
			b.Fatalf("transferred %d/%d bytes, want %d", n, got, size)
		}
		ln.Close()
		b.ReportMetric(float64(size*8)/elapsed.Seconds()/1e6, "Mbps")
	}
}

// BenchmarkTable3CPUShares reproduces Table 3's per-function cost
// breakdown using the compiled-in attribution ledger instead of VTune.
func BenchmarkTable3CPUShares(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ledger := &timing.Ledger{Enabled: true}
		cfg := &udt.Config{Ledger: ledger}
		mbps, _ := loopbackTransfer(b, cfg, 32<<20)
		b.ReportMetric(mbps, "Mbps")
		for _, bk := range timing.Buckets() {
			if share := ledger.Share(bk); share > 0 {
				b.ReportMetric(share*100, bk.String()+"-pct")
			}
		}
	}
}

// BenchmarkFig15PacketSize sweeps the packet size, reproducing the
// throughput-vs-MSS curve (optimal at the path MTU; Fig. 15).
func BenchmarkFig15PacketSize(b *testing.B) {
	for _, mss := range []int{472, 972, 1472, 2972, 8972} {
		b.Run(fmt.Sprintf("mss%d", mss), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mbps, _ := loopbackTransfer(b, &udt.Config{MSS: mss}, 16<<20)
				b.ReportMetric(mbps, "Mbps")
			}
		})
	}
}

// BenchmarkFig10OverlappedIO compares the overlapped receive path (§4.3:
// packets land directly in the waiting reader's buffer) against the
// copy-through-protocol-buffer path at the buffer level.
func BenchmarkFig10OverlappedIO(b *testing.B) {
	const payload = 1464
	const pkts = 64
	src := make([]byte, payload)
	b.Run("direct", func(b *testing.B) {
		user := make([]byte, pkts*payload)
		rb := newRcvBufferForBench(pkts, payload)
		b.SetBytes(pkts * payload)
		seq := int32(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rb.AttachUser(user)
			for k := 0; k < pkts; k++ {
				rb.Store(seq, src)
				seq++
			}
			if rb.DetachUser() != pkts*payload {
				b.Fatal("short direct read")
			}
		}
	})
	b.Run("copied", func(b *testing.B) {
		user := make([]byte, pkts*payload)
		rb := newRcvBufferForBench(pkts, payload)
		b.SetBytes(pkts * payload)
		seq := int32(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < pkts; k++ {
				rb.Store(seq, src)
				seq++
			}
			if rb.Read(user) != pkts*payload {
				b.Fatal("short read")
			}
		}
	})
}
