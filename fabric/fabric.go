// Package fabric adapts non-UDP byte and packet planes into the datagram
// interface UDT endpoints consume (udt.PacketConn), so DialOn, ListenOn and
// Mux run unmodified over overlays: an in-process channel-backed pipe pair
// (the flow-scale stress rig's transport, promoted here) and a framed
// adapter that carries length-prefixed datagrams over any stream — a TCP
// tunnel, a TLS session, an SSH channel, or a pair of OS pipes.
//
// Both adapters keep the endpoint's zero-allocation discipline: datagram
// buffers recycle through a sync.Pool, the write path reuses one framing
// buffer, and the read fast path (data already queued) allocates nothing.
//
// The package deliberately does not import the udt root package — the
// PacketConn contract is structural (ReadFrom, WriteTo, Close, LocalAddr,
// SetReadDeadline, with deadline expiry surfacing as a net.Error whose
// Timeout method reports true), and keeping the dependency arrow pointing
// one way lets the root package's tests consume these adapters.
package fabric

import (
	"net"
	"time"
)

// Addr is a stable in-process transport address: a name on the "fabric"
// network. Two addresses are the same endpoint exactly when their strings
// are equal, which is the comparison rule udt applies to non-UDP addresses.
type Addr string

// Network returns the fabric network name.
func (a Addr) Network() string { return "fabric" }

// String returns the endpoint name.
func (a Addr) String() string { return string(a) }

// timeoutError satisfies net.Error with Timeout() true, which is how UDT's
// read loops distinguish a deadline from a dead transport.
type timeoutError struct{}

// Error describes the expired deadline.
func (timeoutError) Error() string { return "fabric: read deadline exceeded" }

// Timeout reports true: the error is a deadline, not a transport failure.
func (timeoutError) Timeout() bool { return true }

// Temporary reports true: retrying after extending the deadline may succeed.
func (timeoutError) Temporary() bool { return true }

// ErrTimeout is the net.Error returned when a read deadline expires.
var ErrTimeout net.Error = timeoutError{}

// deadline is an atomically-updated read deadline shared by both adapters:
// zero means none, otherwise the unix-microsecond instant.
func deadlineChan(unixMicro int64) (<-chan time.Time, *time.Timer, bool) {
	if unixMicro == 0 {
		return nil, nil, true
	}
	d := time.Until(time.UnixMicro(unixMicro))
	if d <= 0 {
		return nil, nil, false
	}
	tm := time.NewTimer(d)
	return tm.C, tm, true
}
