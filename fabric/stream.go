package fabric

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// FramedConfig shapes a stream-framed adapter. The zero value is ready to
// use: endpoints named "framed-local" and "framed-peer", a 256-datagram
// receive queue, and a 64 KiB datagram cap.
type FramedConfig struct {
	// LocalAddr and RemoteAddr name the two ends of the stream. Defaults:
	// "framed-local", "framed-peer".
	LocalAddr, RemoteAddr string
	// Depth is the receive queue capacity in datagrams. When it fills,
	// the pump goroutine stops reading the stream — backpressure, not
	// loss. Default 256.
	Depth int
	// MaxDatagram rejects frames larger than this as stream corruption
	// (the adapter dies rather than desynchronize). Default 65535.
	MaxDatagram int
}

// Framed carries length-prefixed datagrams over any stream, turning an
// io.ReadWriter — a TCP connection, a TLS session, an SSH channel, a pair
// of OS pipes — into a udt.PacketConn. Each datagram is framed as a 4-byte
// big-endian length followed by the payload; a single Write call per
// datagram keeps frames atomic under concurrent writers.
//
// A pump goroutine owns the stream's read side, so ReadFrom supports
// deadlines even though the underlying stream may not. Close closes the
// stream when it implements io.Closer, which is also what unblocks the
// pump.
type Framed struct {
	rw     io.ReadWriter
	local  net.Addr // boxed once at construction: returning it allocates nothing
	remote net.Addr

	wmu  sync.Mutex
	wbuf []byte // reused frame buffer: 4-byte length + payload

	in       chan *[]byte // *[]byte (not []byte): a pointer recycles without boxing allocations
	free     chan *[]byte // free list; a channel (not sync.Pool) so recycling works across goroutines and Ps
	deadline atomic.Int64 // unix µs; 0 = none

	closed  chan struct{}
	once    sync.Once
	dead    chan struct{} // pump exited; readErr holds why
	readErr error
}

// NewFramed wraps rw in the framed adapter and starts its read pump.
func NewFramed(rw io.ReadWriter, cfg FramedConfig) *Framed {
	if cfg.LocalAddr == "" {
		cfg.LocalAddr = "framed-local"
	}
	if cfg.RemoteAddr == "" {
		cfg.RemoteAddr = "framed-peer"
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 256
	}
	if cfg.MaxDatagram <= 0 {
		cfg.MaxDatagram = 65535
	}
	f := &Framed{
		rw:     rw,
		local:  Addr(cfg.LocalAddr),
		remote: Addr(cfg.RemoteAddr),
		in:     make(chan *[]byte, cfg.Depth),
		free:   make(chan *[]byte, cfg.Depth+16),
		closed: make(chan struct{}),
		dead:   make(chan struct{}),
	}
	go f.pump(cfg.MaxDatagram)
	return f
}

// pump owns the stream's read side: it reassembles frames and queues them
// for ReadFrom, blocking (stream backpressure) when the queue is full.
func (f *Framed) pump(maxDatagram int) {
	defer close(f.dead)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(f.rw, hdr[:]); err != nil {
			f.readErr = err
			return
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		if n > maxDatagram {
			f.readErr = fmt.Errorf("fabric: framed datagram of %d bytes exceeds cap %d (stream desynchronized?)", n, maxDatagram)
			return
		}
		var buf *[]byte
		select {
		case buf = <-f.free:
		default:
			b := make([]byte, 0, 2048)
			buf = &b
		}
		if cap(*buf) < n {
			*buf = make([]byte, 0, n)
		}
		*buf = (*buf)[:n]
		if _, err := io.ReadFull(f.rw, *buf); err != nil {
			f.recycle(buf)
			f.readErr = err
			return
		}
		select {
		case f.in <- buf:
		case <-f.closed:
			return
		}
	}
}

// LocalAddr returns this end's fabric address.
func (f *Framed) LocalAddr() net.Addr { return f.local }

// SetReadDeadline sets the deadline for future and in-flight ReadFrom
// calls; a zero time clears it.
func (f *Framed) SetReadDeadline(t time.Time) error {
	if t.IsZero() {
		f.deadline.Store(0)
	} else {
		f.deadline.Store(t.UnixMicro())
	}
	return nil
}

// ReadFrom receives the next datagram, honoring the read deadline. The
// fast path — a frame already queued — performs no allocation.
func (f *Framed) ReadFrom(b []byte) (int, net.Addr, error) {
	select { // fast path: frame already queued
	case buf := <-f.in:
		n := copy(b, *buf)
		f.recycle(buf)
		return n, f.remote, nil
	default:
	}
	timeout, tm, ok := deadlineChan(f.deadline.Load())
	if !ok {
		return 0, nil, ErrTimeout
	}
	if tm != nil {
		defer tm.Stop()
	}
	select {
	case buf := <-f.in:
		n := copy(b, *buf)
		f.recycle(buf)
		return n, f.remote, nil
	case <-f.closed:
		return 0, nil, net.ErrClosed
	case <-f.dead:
		// Drain frames the pump queued before dying, then surface why.
		select {
		case buf := <-f.in:
			n := copy(b, *buf)
			f.recycle(buf)
			return n, f.remote, nil
		default:
		}
		if f.readErr != nil {
			return 0, nil, f.readErr
		}
		return 0, nil, io.EOF
	case <-timeout:
		return 0, nil, ErrTimeout
	}
}

// WriteTo frames b onto the stream in a single Write call. The
// destination, when non-nil, must name the remote end — the stream is
// point-to-point. The frame buffer is reused, so the steady state
// allocates nothing.
func (f *Framed) WriteTo(b []byte, dst net.Addr) (int, error) {
	select {
	case <-f.closed:
		return 0, net.ErrClosed
	default:
	}
	if dst != nil && dst.String() != f.remote.String() {
		return 0, fmt.Errorf("fabric: framed stream %s cannot reach %s (remote is %s)", f.local, dst, f.remote)
	}
	f.wmu.Lock()
	f.wbuf = f.wbuf[:0]
	f.wbuf = append(f.wbuf, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(f.wbuf, uint32(len(b)))
	f.wbuf = append(f.wbuf, b...)
	_, err := f.rw.Write(f.wbuf)
	f.wmu.Unlock()
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// recycle returns a frame buffer to the free list, letting the garbage
// collector have it when the list is full.
func (f *Framed) recycle(buf *[]byte) {
	select {
	case f.free <- buf:
	default:
	}
}

// Close releases the adapter: pending and future reads return
// net.ErrClosed and the underlying stream is closed when it implements
// io.Closer (which is what unblocks the pump goroutine). Closing is
// idempotent.
func (f *Framed) Close() error {
	var err error
	f.once.Do(func() {
		close(f.closed)
		if c, ok := f.rw.(io.Closer); ok {
			err = c.Close()
		}
	})
	return err
}
