package fabric

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// PipeConfig shapes an in-process pipe pair. The zero value is ready to
// use: endpoints named "pipe-a" and "pipe-b", a 1024-datagram queue per
// direction, and drop-on-full (UDP-like) overflow behavior.
type PipeConfig struct {
	// AddrA and AddrB name the two endpoints. Defaults: "pipe-a", "pipe-b".
	AddrA, AddrB string
	// Depth is the per-direction queue capacity in datagrams. Default 1024.
	Depth int
	// Block makes a full peer queue block the writer (a lossless bounded
	// queue, like a tunnel with backpressure) instead of dropping the
	// datagram the way a congested NIC queue does.
	Block bool
	// MaxDatagram caps the recycled buffer size. Datagrams larger than
	// this still transit but allocate. Default 2048 — comfortably above
	// the default UDT MSS.
	MaxDatagram int
}

// Pipe is one side of an in-memory datagram pair: a bounded channel of
// copied datagrams that either drops on overflow exactly like a congested
// NIC queue (the protocol's loss recovery repairs the drop) or, in the
// blocking variant, applies backpressure. Buffers recycle through a shared
// sync.Pool so a long run does not allocate per datagram.
//
// Pipe implements udt.PacketConn; it is safe for concurrent use.
type Pipe struct {
	addr     net.Addr // boxed once at construction: returning it allocates nothing
	peerAddr net.Addr
	in       chan *[]byte // *[]byte (not []byte): a pointer recycles without boxing allocations
	peer     *Pipe
	free     chan *[]byte // shared free list; a channel (not sync.Pool) so recycling works across goroutines and Ps
	max      int
	block    bool
	closed   chan struct{}
	once     sync.Once
	deadline atomic.Int64 // unix µs; 0 = none
	drops    atomic.Int64
}

// NewPipe connects two in-process endpoints according to cfg and returns
// both ends.
func NewPipe(cfg PipeConfig) (*Pipe, *Pipe) {
	if cfg.AddrA == "" {
		cfg.AddrA = "pipe-a"
	}
	if cfg.AddrB == "" {
		cfg.AddrB = "pipe-b"
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 1024
	}
	if cfg.MaxDatagram <= 0 {
		cfg.MaxDatagram = 2048
	}
	free := make(chan *[]byte, 2*cfg.Depth+16)
	a := &Pipe{addr: Addr(cfg.AddrA), peerAddr: Addr(cfg.AddrB), in: make(chan *[]byte, cfg.Depth), free: free, max: cfg.MaxDatagram, block: cfg.Block, closed: make(chan struct{})}
	b := &Pipe{addr: Addr(cfg.AddrB), peerAddr: Addr(cfg.AddrA), in: make(chan *[]byte, cfg.Depth), free: free, max: cfg.MaxDatagram, block: cfg.Block, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// LocalAddr returns this end's fabric address.
func (p *Pipe) LocalAddr() net.Addr { return p.addr }

// SetReadDeadline sets the deadline for future and in-flight ReadFrom
// calls; a zero time clears it.
func (p *Pipe) SetReadDeadline(t time.Time) error {
	if t.IsZero() {
		p.deadline.Store(0)
	} else {
		p.deadline.Store(t.UnixMicro())
	}
	return nil
}

// ReadFrom receives the next datagram, honoring the read deadline. The
// fast path — data already queued — performs no allocation.
func (p *Pipe) ReadFrom(b []byte) (int, net.Addr, error) {
	select { // fast path: data already queued
	case buf := <-p.in:
		n := copy(b, *buf)
		p.recycle(buf)
		return n, p.peerAddr, nil
	default:
	}
	timeout, tm, ok := deadlineChan(p.deadline.Load())
	if !ok {
		return 0, nil, ErrTimeout
	}
	if tm != nil {
		defer tm.Stop()
	}
	select {
	case buf := <-p.in:
		n := copy(b, *buf)
		p.recycle(buf)
		return n, p.peerAddr, nil
	case <-p.closed:
		return 0, nil, net.ErrClosed
	case <-timeout:
		return 0, nil, ErrTimeout
	}
}

// WriteTo queues a copy of b on the peer's receive queue. The destination,
// when non-nil, must name the peer — the pipe is point-to-point. When the
// peer queue is full a drop-on-full pipe discards the datagram (counted by
// Drops); a blocking pipe waits for space. Writing to a closed peer
// discards the datagram the way UDP into the void does.
func (p *Pipe) WriteTo(b []byte, dst net.Addr) (int, error) {
	select {
	case <-p.closed:
		return 0, net.ErrClosed
	default:
	}
	if dst != nil && dst.String() != p.peerAddr.String() {
		return 0, fmt.Errorf("fabric: pipe %s cannot reach %s (peer is %s)", p.addr, dst, p.peerAddr)
	}
	var buf *[]byte
	select {
	case buf = <-p.free:
	default:
		n := make([]byte, 0, p.max)
		buf = &n
	}
	*buf = append((*buf)[:0], b...)
	if p.block {
		select {
		case p.peer.in <- buf:
		case <-p.closed:
			p.recycle(buf)
			return 0, net.ErrClosed
		case <-p.peer.closed:
			p.drops.Add(1)
			p.recycle(buf)
		}
		return len(b), nil
	}
	select {
	case p.peer.in <- buf:
	default: // peer queue full: the datagram is lost, like UDP under load
		p.drops.Add(1)
		p.recycle(buf)
	}
	return len(b), nil
}

// recycle returns a datagram buffer to the pair's free list, letting the
// garbage collector have it when the list is full.
func (p *Pipe) recycle(buf *[]byte) {
	select {
	case p.free <- buf:
	default:
	}
}

// Close releases this end: pending and future reads return net.ErrClosed,
// blocked writers wake, and the peer's subsequent writes are discarded.
// Closing is idempotent and does not close the peer.
func (p *Pipe) Close() error {
	p.once.Do(func() { close(p.closed) })
	return nil
}

// Drops returns the number of datagrams this end discarded writing to a
// full or closed peer queue.
func (p *Pipe) Drops() int64 { return p.drops.Load() }
