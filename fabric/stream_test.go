package fabric

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// framedPair builds two adapters over an in-process stream pair.
func framedPair(t testing.TB) (*Framed, *Framed) {
	t.Helper()
	ac, bc := net.Pipe()
	a := NewFramed(ac, FramedConfig{LocalAddr: "stream-a", RemoteAddr: "stream-b"})
	b := NewFramed(bc, FramedConfig{LocalAddr: "stream-b", RemoteAddr: "stream-a"})
	t.Cleanup(func() { a.Close(); b.Close() }) //nolint:errcheck
	return a, b
}

func TestFramedRoundTrip(t *testing.T) {
	a, b := framedPair(t)
	sizes := []int{1, 7, 512, 1472, 9000}
	for _, sz := range sizes {
		msg := bytes.Repeat([]byte{byte(sz)}, sz)
		if _, err := a.WriteTo(msg, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 16384)
		b.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
		n, from, err := b.ReadFrom(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != sz || !bytes.Equal(buf[:n], msg) {
			t.Fatalf("size %d: got %d bytes", sz, n)
		}
		if from.String() != "stream-a" {
			t.Fatalf("from = %v", from)
		}
	}
}

// Datagram boundaries must survive the stream: many small writes from both
// directions arrive as the same discrete datagrams, in order.
func TestFramedBoundaries(t *testing.T) {
	a, b := framedPair(t)
	const count = 200
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 64)
		for i := 0; i < count; i++ {
			b.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
			n, _, err := b.ReadFrom(buf)
			if err != nil {
				done <- err
				return
			}
			if n != 3 || buf[0] != byte(i) {
				done <- errors.New("boundary or order violated")
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < count; i++ {
		if _, err := a.WriteTo([]byte{byte(i), 2, 3}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestFramedDeadline(t *testing.T) {
	_, b := framedPair(t)
	b.SetReadDeadline(time.Now().Add(20 * time.Millisecond)) //nolint:errcheck
	_, _, err := b.ReadFrom(make([]byte, 16))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want timeout net.Error", err)
	}
}

// A dead stream surfaces its error from ReadFrom — after any frames the
// pump had already queued are drained.
func TestFramedStreamDeath(t *testing.T) {
	ac, bc := net.Pipe()
	a := NewFramed(ac, FramedConfig{})
	b := NewFramed(bc, FramedConfig{})
	defer b.Close() //nolint:errcheck
	if _, err := a.WriteTo([]byte("last words"), nil); err != nil {
		t.Fatal(err)
	}
	// Give the pump time to queue the frame, then kill the stream.
	time.Sleep(20 * time.Millisecond)
	a.Close() //nolint:errcheck
	buf := make([]byte, 64)
	n, _, err := b.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "last words" {
		t.Fatalf("queued frame lost: n=%d err=%v", n, err)
	}
	if _, _, err := b.ReadFrom(buf); err == nil {
		t.Fatal("read from dead stream succeeded")
	}
}

// An oversized frame length is stream corruption: the adapter must die
// with a descriptive error rather than desynchronize.
func TestFramedCorruption(t *testing.T) {
	ac, bc := net.Pipe()
	b := NewFramed(bc, FramedConfig{MaxDatagram: 1024})
	defer b.Close()                             //nolint:errcheck
	go ac.Write([]byte{0xff, 0xff, 0xff, 0xff}) //nolint:errcheck
	_, _, err := b.ReadFrom(make([]byte, 16))
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want corruption error", err)
	}
}

// TestFramedAllocs gates the zero-allocation discipline on the framed hot
// path: with frames queued, WriteTo + ReadFrom recycle every buffer.
func TestFramedAllocs(t *testing.T) {
	ac, bc := net.Pipe()
	a := NewFramed(ac, FramedConfig{})
	b := NewFramed(bc, FramedConfig{})
	defer a.Close() //nolint:errcheck
	defer b.Close() //nolint:errcheck
	msg := make([]byte, 1024)
	buf := make([]byte, 2048)
	// Reader drains continuously so the writer never blocks on net.Pipe.
	// No deadline: a blocking read without one takes the timer-free path,
	// so the reader goroutine contributes no allocations either.
	got := make(chan struct{}, 4096)
	go func() {
		for {
			if n, _, err := b.ReadFrom(buf); err != nil {
				return
			} else if n > 0 {
				got <- struct{}{}
			}
		}
	}()
	// Warm the pools.
	for i := 0; i < 64; i++ {
		a.WriteTo(msg, nil) //nolint:errcheck
		<-got
	}
	avg := testing.AllocsPerRun(500, func() {
		a.WriteTo(msg, nil) //nolint:errcheck
		<-got
	})
	if avg > 0.05 {
		t.Fatalf("framed data path allocates %.3f allocs/packet, want 0", avg)
	}
}

// BenchmarkFramedThroughput measures raw datagram goodput through the
// framed adapter over a real TCP loopback connection — the number
// BENCH_baseline.json records for the overlay fast path.
func BenchmarkFramedThroughput(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close() //nolint:errcheck
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	sc := <-accepted
	fa := NewFramed(cc, FramedConfig{LocalAddr: "bench-a", RemoteAddr: "bench-b"})
	fb := NewFramed(sc, FramedConfig{LocalAddr: "bench-b", RemoteAddr: "bench-a", Depth: 4096})
	defer fa.Close() //nolint:errcheck
	defer fb.Close() //nolint:errcheck

	const size = 1472
	msg := make([]byte, size)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4096)
		for i := 0; i < b.N; i++ {
			fb.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
			if _, _, err := fb.ReadFrom(buf); err != nil {
				return
			}
		}
	}()
	b.SetBytes(size)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := fa.WriteTo(msg, nil); err != nil {
			b.Fatal(err)
		}
	}
	<-done
	el := time.Since(start)
	b.ReportMetric(float64(b.N)*size*8/el.Seconds()/1e6, "Mbps")
}
