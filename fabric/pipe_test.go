package fabric

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := NewPipe(PipeConfig{})
	defer a.Close() //nolint:errcheck
	defer b.Close() //nolint:errcheck

	msg := []byte("hello over the fabric")
	if _, err := a.WriteTo(msg, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, from, err := b.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], msg) {
		t.Fatalf("got %q", buf[:n])
	}
	if from.String() != "pipe-a" || from.Network() != "fabric" {
		t.Fatalf("from = %v/%v", from.Network(), from)
	}
	if a.LocalAddr().String() != "pipe-a" || b.LocalAddr().String() != "pipe-b" {
		t.Fatalf("addrs %v %v", a.LocalAddr(), b.LocalAddr())
	}
}

func TestPipeAddressing(t *testing.T) {
	a, b := NewPipe(PipeConfig{AddrA: "left", AddrB: "right"})
	defer a.Close() //nolint:errcheck
	defer b.Close() //nolint:errcheck
	// A nil destination is the implied peer; a wrong one is a wiring bug.
	if _, err := a.WriteTo([]byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteTo([]byte("x"), Addr("elsewhere")); err == nil {
		t.Fatal("write to a third party on a point-to-point pipe succeeded")
	}
}

func TestPipeDeadline(t *testing.T) {
	a, b := NewPipe(PipeConfig{})
	defer a.Close() //nolint:errcheck
	defer b.Close() //nolint:errcheck

	b.SetReadDeadline(time.Now().Add(30 * time.Millisecond)) //nolint:errcheck
	start := time.Now()
	_, _, err := b.ReadFrom(make([]byte, 16))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want net.Error with Timeout()", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline wildly late")
	}
	// An already-expired deadline fails immediately; clearing it restores
	// indefinite blocking for queued data.
	b.SetReadDeadline(time.Unix(1, 0)) //nolint:errcheck
	if _, _, err := b.ReadFrom(make([]byte, 16)); err == nil {
		t.Fatal("expired deadline read succeeded")
	}
	b.SetReadDeadline(time.Time{}) //nolint:errcheck
	a.WriteTo([]byte("late"), nil) //nolint:errcheck
	if _, _, err := b.ReadFrom(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
}

func TestPipeClose(t *testing.T) {
	a, b := NewPipe(PipeConfig{})
	done := make(chan error, 1)
	go func() {
		_, _, err := b.ReadFrom(make([]byte, 16))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close() //nolint:errcheck
	b.Close() //nolint:errcheck — idempotent
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("err = %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the blocked reader")
	}
	if _, err := b.WriteTo([]byte("x"), nil); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	// Writes toward a closed peer vanish like UDP into the void.
	if _, err := a.WriteTo([]byte("x"), nil); err != nil {
		t.Fatalf("write to closed peer errored: %v", err)
	}
}

func TestPipeDropOnFull(t *testing.T) {
	a, b := NewPipe(PipeConfig{Depth: 2})
	defer a.Close() //nolint:errcheck
	defer b.Close() //nolint:errcheck
	for i := 0; i < 5; i++ {
		if _, err := a.WriteTo([]byte{byte(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Drops(); got != 3 {
		t.Fatalf("drops = %d, want 3", got)
	}
}

func TestPipeBlocking(t *testing.T) {
	a, b := NewPipe(PipeConfig{Depth: 1, Block: true})
	defer b.Close() //nolint:errcheck

	// Fill the queue, then block on the next write until the reader drains.
	if _, err := a.WriteTo([]byte("1"), nil); err != nil {
		t.Fatal(err)
	}
	wrote := make(chan struct{})
	go func() {
		a.WriteTo([]byte("2"), nil) //nolint:errcheck
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("write to a full blocking pipe returned before drain")
	case <-time.After(30 * time.Millisecond):
	}
	if _, _, err := b.ReadFrom(make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-wrote:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked writer never resumed")
	}
	if a.Drops() != 0 {
		t.Fatalf("blocking pipe dropped %d", a.Drops())
	}
	// Close must wake a blocked writer (the resumed write above already
	// refilled the single-slot queue).
	blocked := make(chan error, 1)
	go func() {
		_, err := a.WriteTo([]byte("4"), nil)
		blocked <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close() //nolint:errcheck
	select {
	case err := <-blocked:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("err = %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the blocked writer")
	}
}

// TestPipeAllocs gates the zero-allocation discipline on the pipe's hot
// path: with data queued, WriteTo + ReadFrom recycle every buffer.
func TestPipeAllocs(t *testing.T) {
	a, b := NewPipe(PipeConfig{})
	defer a.Close() //nolint:errcheck
	defer b.Close() //nolint:errcheck
	msg := make([]byte, 1024)
	buf := make([]byte, 2048)
	// Warm the pool.
	for i := 0; i < 64; i++ {
		a.WriteTo(msg, nil) //nolint:errcheck
		b.ReadFrom(buf)     //nolint:errcheck
	}
	avg := testing.AllocsPerRun(1000, func() {
		a.WriteTo(msg, nil) //nolint:errcheck
		b.ReadFrom(buf)     //nolint:errcheck
	})
	if avg > 0.01 {
		t.Fatalf("pipe data path allocates %.3f allocs/packet, want 0", avg)
	}
}
