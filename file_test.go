package udt

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSendRecvFile(t *testing.T) {
	cli, srv, _ := pair(t, nil)
	data := make([]byte, 3_000_000)
	rand.New(rand.NewSource(5)).Read(data)

	errc := make(chan error, 1)
	go func() {
		n, err := cli.SendFile(bytes.NewReader(data), int64(len(data)))
		if err == nil && n != int64(len(data)) {
			t.Errorf("SendFile sent %d", n)
		}
		errc <- err
	}()
	var got bytes.Buffer
	n, err := srv.RecvFile(&got)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) || !bytes.Equal(got.Bytes(), data) {
		t.Fatalf("received %d bytes, equal=%v", n, bytes.Equal(got.Bytes(), data))
	}
}

func TestSendRecvMultipleFiles(t *testing.T) {
	cli, srv, _ := pair(t, nil)
	files := [][]byte{
		[]byte("first"),
		make([]byte, 100_000),
		{},
		[]byte("last"),
	}
	rand.New(rand.NewSource(6)).Read(files[1])
	go func() {
		for _, f := range files {
			if _, err := cli.SendFile(bytes.NewReader(f), int64(len(f))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i, f := range files {
		var got bytes.Buffer
		if _, err := srv.RecvFile(&got); err != nil {
			t.Fatalf("file %d: %v", i, err)
		}
		if !bytes.Equal(got.Bytes(), f) {
			t.Fatalf("file %d mismatch: %d vs %d bytes", i, got.Len(), len(f))
		}
	}
}

func TestSendFileNegative(t *testing.T) {
	cli, _, _ := pair(t, nil)
	if _, err := cli.SendFile(bytes.NewReader(nil), -1); err == nil {
		t.Fatal("negative length accepted")
	}
}
