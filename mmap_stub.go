//go:build !(linux || darwin)

package udt

import "errors"

// Platforms without a (tested) mmap path: SendFileZC degrades to the
// copying SendFile loop, which is always correct.

var errNoMmap = errors.New("udt: file mapping not supported on this platform")

func mmapFile(fd uintptr, length int64) ([]byte, error) { return nil, errNoMmap }

func munmapFile(m []byte) error { return nil }
