package udt

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"udt/internal/timerwheel"
	"udt/internal/timing"
)

// This file is the connection scheduler: the fixed worker pool that runs
// every connection's sender state machine. Where the transport previously
// dedicated a goroutine plus a runtime timer to each Conn, a flow is now a
// passive poolTask owned by one poolShard — a single worker goroutine with
// a hierarchical timing wheel, a run queue, and a clock. Parking 100k
// flows costs 100k intrusive timer nodes on the wheels, not 100k blocked
// goroutines; goroutine count stays O(shards), and an idle flow wakes only
// at its EXP keep-alive deadline (core.Conn.NextWake).

// taskNever is the wake value a task returns when it wants no further
// scheduling: it stays idle until an external wake (or detach).
const taskNever = math.MaxInt64

const (
	// spinPopulation is the largest shard population for which the worker
	// busy-waits short pacing gaps (§4.5's hybrid sleep/spin). With more
	// residents, spinning one flow's 12 µs packet gap would starve the
	// others, so the worker parks on the wheel instead; catch-up bursting
	// in claimBurstLocked keeps saturation throughput.
	spinPopulation = 2
	// spinDelayMax mirrors the previous per-conn sender loop: pacing waits
	// under 2 ms use the spin pacer, longer ones sleep.
	spinDelayMax = 2000
	// maxParkUS bounds one parked sleep; kicks end it early, this is just
	// a backstop so an empty shard re-checks state occasionally.
	maxParkUS = 60_000_000
)

// poolTask is a schedulable connection state machine. runTask services the
// task once (never under the shard lock; the task takes its own) and
// returns the next wake deadline on the shard's clock — taskNever to go
// fully idle — plus whether that deadline is a pacing gap worth
// busy-waiting (§4.5). sched exposes the shard-lock-guarded scheduling
// node the worker and wheel link the task by.
type poolTask interface {
	runTask() (wake int64, spin bool)
	sched() *schedState
}

// taskState is the scheduling state of one poolTask.
type taskState int8

const (
	taskIdle     taskState = iota // parked: on the wheel, or waiting for a wake
	taskReady                     // in the run queue
	taskRunning                   // runTask in flight on the worker
	taskRerun                     // runTask in flight, wake arrived meanwhile
	taskDetached                  // leaving the shard; worker must not run it again
)

// schedState is the per-task scheduling node, embedded in the task (a Conn
// or a pendingDial) so scheduling never allocates. All fields are guarded
// by the owning shard's mutex.
type schedState struct {
	state taskState
	spin  bool // task's last runTask requested spin-pacing
	gone  bool // worker guarantees it will never touch the task again
	timer timerwheel.Timer
}

// connPool is a fixed set of shards serving one Mux (or one dialed
// connection, which gets a degenerate single-shard pool).
type connPool struct {
	shards []*poolShard
	next   atomic.Uint32
	wg     sync.WaitGroup
}

// newConnPool starts n shard workers. ledger receives the pool's pacing
// time attribution (Table 3's "timing" row); nil disables it.
func newConnPool(n int, ledger *timing.Ledger) *connPool {
	if n < 1 {
		n = 1
	}
	p := &connPool{shards: make([]*poolShard, n)}
	for i := range p.shards {
		s := &poolShard{
			clock:  timing.NewSysClock(),
			wheel:  timerwheel.New(),
			ledger: ledger,
			kick:   make(chan struct{}, 1),
		}
		s.pacer = timing.NewPacer(s.clock)
		s.cond = sync.NewCond(&s.mu)
		p.shards[i] = s
	}
	p.wg.Add(n)
	for _, s := range p.shards {
		go func(s *poolShard) {
			defer p.wg.Done()
			s.run()
		}(s)
	}
	return p
}

// shard assigns the next connection round-robin.
func (p *connPool) shard() *poolShard {
	return p.shards[int(p.next.Add(1)-1)%len(p.shards)]
}

// close stops every worker. All tasks must be detached first (Conn.Close
// does); a detach racing close still completes — see poolShard.detach.
func (p *connPool) close() {
	for _, s := range p.shards {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.notify()
	}
	p.wg.Wait()
}

// poolShard is one worker: a timing wheel ordering parked tasks by
// deadline, a FIFO run queue of ready tasks, and the goroutine that
// services them. Every connection on the shard shares its clock — wake
// deadlines and the wheel must live on one timeline.
type poolShard struct {
	clock  *timing.SysClock
	pacer  *timing.Pacer
	ledger *timing.Ledger

	mu      sync.Mutex
	cond    *sync.Cond // detach waits for the worker here
	wheel   *timerwheel.Wheel
	q       []poolTask // FIFO ring of ready tasks
	qh, qn  int
	pop     int  // attached tasks
	nspin   int  // attached tasks whose last run requested spin-pacing
	closed  bool // close() requested
	stopped bool // worker has exited its loop

	kick chan struct{} // buffered 1: wakes a parked worker
}

// notify wakes the worker if it is parked; a no-op if a wake is already
// pending.
func (s *poolShard) notify() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// attach adds a task to the shard, idle. The caller follows with wake (a
// connection's first service run) or sleep (a deadline-only task).
func (s *poolShard) attach(t poolTask) {
	st := t.sched()
	s.mu.Lock()
	st.state = taskIdle
	st.spin, st.gone = false, false
	st.timer.Owner = t
	s.pop++
	s.mu.Unlock()
	noteGoroutines()
}

// wake makes an idle task ready to run (canceling its parked deadline) and
// marks a running one for re-service. Safe to call from any goroutine,
// including under the task's own lock — the shard lock always nests inside
// task locks, never the reverse.
func (s *poolShard) wake(t poolTask) {
	st := t.sched()
	s.mu.Lock()
	switch st.state {
	case taskIdle:
		s.wheel.Cancel(&st.timer)
		st.state = taskReady
		s.pushLocked(t)
		s.notify()
	case taskRunning:
		st.state = taskRerun
	}
	s.mu.Unlock()
}

// sleep parks an idle task until wake (µs on the shard clock) without
// running it first — the deadline-only path pending handshakes use.
func (s *poolShard) sleep(t poolTask, wake int64) {
	st := t.sched()
	s.mu.Lock()
	if st.state == taskIdle {
		s.wheel.Schedule(&st.timer, wake)
		s.notify() // the new deadline may be earlier than the worker's park
	}
	s.mu.Unlock()
}

// detach removes a task from the shard and blocks until the worker
// guarantees no runTask call is in flight or will ever start — after which
// the caller may release resources the task's service path touches
// (Conn.Close unmaps zero-copy file regions on this guarantee).
func (s *poolShard) detach(t poolTask) {
	st := t.sched()
	s.mu.Lock()
	switch st.state {
	case taskDetached:
		// Concurrent or repeated detach: just wait for the verdict below.
	case taskIdle:
		s.wheel.Cancel(&st.timer)
		st.state = taskDetached
		st.gone = true
		s.pop--
	default:
		// Ready in the queue, or mid-run: the worker observes taskDetached
		// when it next handles the task and sets gone.
		st.state = taskDetached
		s.pop--
		s.notify()
	}
	if st.spin {
		st.spin = false
		s.nspin--
	}
	for !st.gone {
		if s.stopped {
			// The worker exited (pool closed) and will never pop the task;
			// nothing can be running it — see run's exit conditions.
			st.gone = true
			break
		}
		s.cond.Wait()
	}
	s.mu.Unlock()
}

func (s *poolShard) pushLocked(t poolTask) {
	if s.qn == len(s.q) {
		grown := make([]poolTask, max(8, 2*len(s.q)))
		for i := 0; i < s.qn; i++ {
			grown[i] = s.q[(s.qh+i)%len(s.q)]
		}
		s.q, s.qh = grown, 0
	}
	s.q[(s.qh+s.qn)%len(s.q)] = t
	s.qn++
}

func (s *poolShard) popLocked() poolTask {
	t := s.q[s.qh]
	s.q[s.qh] = nil
	s.qh = (s.qh + 1) % len(s.q)
	s.qn--
	return t
}

// fireLocked is the wheel's expiry callback: a fired deadline makes the
// parked task ready. Called with s.mu held (the worker advances the wheel
// under its own lock).
func (s *poolShard) fireLocked(tm *timerwheel.Timer) {
	t := tm.Owner.(poolTask)
	st := t.sched()
	if st.state == taskIdle {
		st.state = taskReady
		s.pushLocked(t)
	}
}

// run is the shard worker: advance the wheel, run ready tasks, park until
// the next deadline or kick. One iteration services one task — queue order
// is FIFO, so no flow starves its shard-mates even mid-burst (a task
// wanting more work immediately re-enters the queue behind them).
func (s *poolShard) run() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	s.mu.Lock()
	for {
		if s.closed {
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		now := s.clock.Now()
		s.wheel.Advance(now, s.fireLocked)
		if s.qn == 0 {
			next := s.wheel.Next()
			wantSpin := s.nspin > 0 && s.pop <= spinPopulation
			s.mu.Unlock()
			noteGoroutines()
			delay := next - s.clock.Now()
			switch {
			case delay <= 0:
				// A deadline is already due; loop to fire it.
			case wantSpin && delay < spinDelayMax:
				// §4.5: microsecond pacing accuracy for a near-empty shard.
				s.ledger.Time(timing.BucketTiming, func() { s.pacer.WaitUntil(next) })
			default:
				if delay > maxParkUS {
					delay = maxParkUS
				}
				timer.Reset(time.Duration(delay) * time.Microsecond)
				select {
				case <-s.kick:
					if !timer.Stop() {
						<-timer.C
					}
				case <-timer.C:
				}
			}
			s.mu.Lock()
			continue
		}
		t := s.popLocked()
		st := t.sched()
		if st.state == taskDetached {
			st.gone = true
			s.cond.Broadcast()
			continue
		}
		st.state = taskRunning
		s.mu.Unlock()

		wake, spin := t.runTask()

		s.mu.Lock()
		if st.spin != spin && st.state != taskDetached {
			if spin {
				s.nspin++
			} else {
				s.nspin--
			}
			st.spin = spin
		}
		switch {
		case st.state == taskDetached:
			st.gone = true
			s.cond.Broadcast()
		case st.state == taskRerun:
			st.state = taskReady
			s.pushLocked(t)
		case wake == taskNever:
			st.state = taskIdle // parked with no deadline; only a wake revives it
		case wake <= s.clock.Now():
			st.state = taskReady
			s.pushLocked(t)
		default:
			st.state = taskIdle
			s.wheel.Schedule(&st.timer, wake)
		}
	}
}

// peakGoroutines tracks the process-wide high-water goroutine count, as
// sampled at scheduler park points and connection setup. Stats surfaces it
// so deployments (and the 100k-flow stress bench) can verify the
// goroutines-per-flow regime: with the shared scheduler the peak stays
// O(shards + sockets), not O(flows).
var peakGoroutines atomic.Int64

// noteGoroutines samples runtime.NumGoroutine into the peak gauge.
func noteGoroutines() int {
	n := runtime.NumGoroutine()
	for {
		p := peakGoroutines.Load()
		if int64(n) <= p || peakGoroutines.CompareAndSwap(p, int64(n)) {
			return n
		}
	}
}
