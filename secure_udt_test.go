package udt

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"udt/internal/netem"
	"udt/internal/packet"
)

var testPSK = []byte("secure-udt test pre-shared key!!") // 32 bytes

// securePair is one dialed client/server pairing on a netem fabric, with
// the client's raw endpoint kept around so tests can inject datagrams that
// arrive on the server's real read loop — the only race-safe way to spoof
// traffic at a live connection.
type securePair struct {
	nw     *netem.Net
	epC    *netem.Endpoint
	saddr  net.Addr
	client *Conn
	server *Conn
	ln     *Listener
}

// secureDial builds a netem fabric, starts a listener with scfg, and dials
// it with ccfg, returning the pairing on success or the dial error (with
// the listener still populated, so refusal tests can inspect its state).
func secureDial(t *testing.T, seed int64, ccfg, scfg *Config) (*securePair, error) {
	t.Helper()
	nw := netem.New(seed, nil)
	epC, err := nw.Endpoint("c")
	if err != nil {
		t.Fatal(err)
	}
	epS, err := nw.Endpoint("s")
	if err != nil {
		t.Fatal(err)
	}
	nw.SetLink("c", "s", netem.LinkConfig{Delay: 500})

	ln, err := ListenOn(epS, scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	p := &securePair{nw: nw, epC: epC, saddr: epS.LocalAddr(), ln: ln}

	accepted := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	p.client, err = DialOn(epC, p.saddr, ccfg)
	if err != nil {
		return p, err
	}
	t.Cleanup(func() { p.client.Close() })
	select {
	case p.server = <-accepted:
		t.Cleanup(func() { p.server.Close() })
		return p, nil
	case <-time.After(10 * time.Second):
		t.Fatal("accept timed out")
		return nil, nil
	}
}

// echo pushes msg client→server and back, requiring both directions to
// deliver bit-exactly — the cheapest proof a pairing actually works.
func echo(t *testing.T, client, server *Conn, msg []byte) {
	t.Helper()
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("client→server corrupted: got %q", got)
	}
	if _, err := server.Write(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("server→client corrupted: got %q", got)
	}
}

// waitFor polls cond until it holds or a generous deadline expires;
// injected datagrams cross the fabric asynchronously.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(what)
}

// TestSecureHandshakeAEAD is the happy path: both sides hold the PSK and
// ask for the sealed channel. The dial must traverse the cookie challenge
// (counted), both sessions must come up AEAD, and data must flow both ways.
func TestSecureHandshakeAEAD(t *testing.T) {
	cfg := &Config{PSK: testPSK, AEAD: true}
	p, err := secureDial(t, 21, cfg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.client.sec == nil || p.server.sec == nil {
		t.Fatal("secure dial produced a cleartext session")
	}
	if !p.client.aead || !p.server.aead {
		t.Fatal("both sides requested AEAD but the sealed channel is off")
	}
	echo(t, p.client, p.server, []byte("sealed end to end"))
	if st := p.server.Stats(); st.CookieSent == 0 {
		t.Fatalf("first secure request was not cookie-challenged: %+v", st)
	}
	if st := p.client.Stats(); st.AuthRejects != 0 || st.ReplayDrops != 0 {
		t.Fatalf("clean run counted rejects: %+v", st)
	}
}

// TestSecureNegotiateDown walks the policy matrix for mismatched endpoint
// configurations: every cell either connects with the expected protection
// level or refuses with the expected error, and a strict listener must not
// allocate any per-connection state for peers it turns away.
func TestSecureNegotiateDown(t *testing.T) {
	strict := &Config{PSK: testPSK, HandshakeTimeout: 600 * time.Millisecond}
	lax := &Config{PSK: testPSK, AllowUnauth: true, HandshakeTimeout: 600 * time.Millisecond}
	clear := &Config{HandshakeTimeout: 600 * time.Millisecond}
	wrong := &Config{PSK: []byte("the wrong pre-shared key entirely"), HandshakeTimeout: 600 * time.Millisecond}

	t.Run("clear-client/strict-server", func(t *testing.T) {
		p, err := secureDial(t, 31, clear, strict)
		if err != ErrTimeout {
			t.Fatalf("strict server answered a clear client: err=%v", err)
		}
		// The refusal must be stateless: no accept entry, no flow, no
		// backlog slot — only the reject counter moves.
		m := p.ln.m
		if n := m.authRejects.Load(); n == 0 {
			t.Fatal("refused handshakes not counted")
		}
		m.mu.Lock()
		accepted, conns := len(m.accepted), len(m.conns)
		m.mu.Unlock()
		if accepted != 0 || conns != 0 || m.core.Flows() != 0 || len(p.ln.backlog) != 0 {
			t.Fatalf("refused peer allocated state: accepted=%d conns=%d flows=%d backlog=%d",
				accepted, conns, m.core.Flows(), len(p.ln.backlog))
		}
	})

	t.Run("clear-client/lax-server", func(t *testing.T) {
		p, err := secureDial(t, 32, clear, lax)
		if err != nil {
			t.Fatal(err)
		}
		if p.client.sec != nil || p.server.sec != nil {
			t.Fatal("clear client negotiated a secure session")
		}
		echo(t, p.client, p.server, []byte("negotiated down to clear"))
	})

	t.Run("strict-client/clear-server", func(t *testing.T) {
		_, err := secureDial(t, 33, strict, clear)
		if err != errAuthRequired {
			t.Fatalf("strict client accepted an unauthenticated server: err=%v", err)
		}
	})

	t.Run("lax-client/clear-server", func(t *testing.T) {
		p, err := secureDial(t, 34, lax, clear)
		if err != nil {
			t.Fatal(err)
		}
		if p.client.sec != nil || p.server.sec != nil {
			t.Fatal("clear server negotiated a secure session")
		}
		echo(t, p.client, p.server, []byte("lax client fell back"))
	})

	t.Run("wrong-psk-client/strict-server", func(t *testing.T) {
		p, err := secureDial(t, 35, wrong, strict)
		if err != ErrTimeout {
			t.Fatalf("mismatched PSKs produced a connection: err=%v", err)
		}
		if n := p.ln.m.authRejects.Load(); n == 0 {
			t.Fatal("bad-MAC handshakes not counted")
		}
		p.ln.m.mu.Lock()
		accepted := len(p.ln.m.accepted)
		p.ln.m.mu.Unlock()
		if accepted != 0 {
			t.Fatalf("bad-MAC peer allocated %d accept entries", accepted)
		}
	})

	t.Run("aead-client/auth-only-server", func(t *testing.T) {
		aead := &Config{PSK: testPSK, AEAD: true}
		p, err := secureDial(t, 36, aead, strict)
		if err != nil {
			t.Fatal(err)
		}
		if p.client.sec == nil || p.server.sec == nil {
			t.Fatal("session not authenticated")
		}
		if p.client.aead || p.server.aead {
			t.Fatal("AEAD granted though only one side requested it")
		}
		echo(t, p.client, p.server, []byte("authenticated, not sealed"))
	})
}

// TestSecureMuxDial runs the secure handshake between two shared sockets —
// the Mux dial path, cookie echo through the timer wheel and all.
func TestSecureMuxDial(t *testing.T) {
	nw := netem.New(41, nil)
	epC, err := nw.Endpoint("c")
	if err != nil {
		t.Fatal(err)
	}
	epS, err := nw.Endpoint("s")
	if err != nil {
		t.Fatal(err)
	}
	nw.SetLink("c", "s", netem.LinkConfig{Delay: 500})

	cfg := &Config{PSK: testPSK, AEAD: true}
	mc, err := NewMux(epC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mc.Close() })
	ms, err := NewMux(epS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	ln, err := ms.Listen()
	if err != nil {
		t.Fatal(err)
	}

	accepted := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := mc.Dial(epS.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	var server *Conn
	select {
	case server = <-accepted:
	case <-time.After(10 * time.Second):
		t.Fatal("accept timed out")
	}
	if !client.aead || !server.aead {
		t.Fatal("mux-to-mux dial did not come up AEAD")
	}
	echo(t, client, server, []byte("sealed across shared sockets"))
	if st := client.Stats(); st.CookieSent != 0 {
		// The dialing mux never challenged anyone; the counter is
		// per-socket, not global, so it must stay zero on this side.
		t.Fatalf("client-side mux counted cookie challenges: %+v", st)
	}
	if st := server.Stats(); st.CookieSent == 0 {
		t.Fatalf("secure mux dial skipped the cookie exchange: %+v", st)
	}
}

// TestSecureInjectedControlDropped establishes a sealed pair, then injects
// a forged cleartext shutdown from the client's own address — the
// strongest primitive an attacker without the PSK has, since source
// addresses can be spoofed. The packet must be dropped and counted, and
// the connection must keep working.
func TestSecureInjectedControlDropped(t *testing.T) {
	cfg := &Config{PSK: testPSK, AEAD: true}
	p, err := secureDial(t, 51, cfg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	echo(t, p.client, p.server, []byte("before the forgery"))

	forged := make([]byte, 64)
	n, err := packet.EncodeSimple(forged, packet.TypeShutdown, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Inject through the client's endpoint so the forgery arrives on the
	// server's real read loop, like any wire datagram.
	if _, err := p.epC.WriteTo(forged[:n], p.saddr); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "forged control packet not counted", func() bool {
		return p.server.Stats().AuthRejects > 0
	})
	// The forged shutdown must not have torn the connection down.
	echo(t, p.client, p.server, []byte("after the forgery"))
}

// TestSecureReplayedControlDropped replays a captured sealed control
// packet: the first copy authenticates and is admitted, the byte-identical
// second copy must die in the anti-replay window — the attack a plain
// AEAD check can't stop, since the replay carries a valid tag.
func TestSecureReplayedControlDropped(t *testing.T) {
	cfg := &Config{PSK: testPSK, AEAD: true}
	p, err := secureDial(t, 52, cfg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	echo(t, p.client, p.server, []byte("prime the channel"))

	// Seal a keep-alive with the client's own send half — exactly the
	// bytes an eavesdropper could capture off the wire. Send-side session
	// state is guarded by the connection mutex, shared with the sender
	// loop.
	var raw [64]byte
	n, err := packet.EncodeSimple(raw[:], packet.TypeKeepAlive, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.client.mu.Lock()
	sealed := append([]byte(nil), p.client.sec.SealCtrl(raw[:n])...)
	p.client.mu.Unlock()

	before := p.server.Stats().ReplayDrops
	for i := 0; i < 2; i++ {
		cp := append([]byte(nil), sealed...)
		if _, err := p.epC.WriteTo(cp, p.saddr); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "replayed control packet not dropped", func() bool {
		return p.server.Stats().ReplayDrops == before+1
	})
	if st := p.server.Stats(); st.AuthRejects != 0 {
		t.Fatalf("genuine sealed copy failed authentication: %+v", st)
	}
	// The session survives: the real channel still moves sealed data.
	echo(t, p.client, p.server, []byte("after the replay"))
}

// TestSecureLossyAEADTransferBitExact is the impaired-path acceptance run:
// 2 MB through loss, duplication and jitter with the sealed channel on.
// Retransmissions re-seal byte-identically (the AEAD nonce is the packet
// sequence number, and the mutable timestamp rides outside the sealed
// region), so the stream must still arrive bit-exact.
func TestSecureLossyAEADTransferBitExact(t *testing.T) {
	nw := netem.New(61, nil)
	epC, err := nw.Endpoint("c")
	if err != nil {
		t.Fatal(err)
	}
	epS, err := nw.Endpoint("s")
	if err != nil {
		t.Fatal(err)
	}
	nw.SetLink("c", "s", netem.LinkConfig{Delay: 1000, Jitter: 1000, Loss: 0.01, Dup: 0.002})

	cfg := &Config{PSK: testPSK, AEAD: true}
	ln, err := ListenOn(epS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := DialOn(epC, epS.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	var server *Conn
	select {
	case server = <-accepted:
		t.Cleanup(func() { server.Close() })
	case <-time.After(10 * time.Second):
		t.Fatal("accept timed out")
	}

	payload := make([]byte, 2<<20)
	rand.New(rand.NewSource(61)).Read(payload) //nolint:gosec // test data

	done := make(chan []byte, 1)
	go func() {
		got := make([]byte, 0, len(payload))
		buf := make([]byte, 64<<10)
		for len(got) < len(payload) {
			n, err := server.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				break
			}
		}
		done <- got
	}()
	if _, err := client.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if !bytes.Equal(got, payload) {
		t.Fatalf("sealed stream corrupted under impairment (%d bytes)", len(got))
	}
	if st := client.Stats(); st.PktsRetrans == 0 {
		t.Fatal("1% loss produced no retransmissions — resealing never exercised")
	}
	if cs := nw.PathStats("c", "s"); cs.Duplicated == 0 {
		t.Fatalf("fabric duplicated nothing: %+v", cs)
	}
	// Impairment must never look like an attack: loss and duplication of
	// data packets are the engine's business (duplicate-triggered re-ACKs
	// are load-bearing), not the AEAD layer's.
	if st := client.Stats(); st.AuthRejects != 0 {
		t.Fatalf("impairment alone produced auth rejects: %+v", st)
	}
}
