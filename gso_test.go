package udt

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// TestSplitSegments is the table gate for the GRO train splitter: every
// boundary case — ragged tails, single segments, corrupt or absurd
// segment sizes — must reproduce exact datagram boundaries, never panic,
// and never emit an empty packet.
func TestSplitSegments(t *testing.T) {
	seg := func(sizes ...int) [][]byte {
		var out [][]byte
		b := byte(1)
		for _, n := range sizes {
			p := bytes.Repeat([]byte{b}, n)
			out = append(out, p)
			b++
		}
		return out
	}
	join := func(parts [][]byte) []byte {
		var raw []byte
		for _, p := range parts {
			raw = append(raw, p...)
		}
		return raw
	}
	cases := []struct {
		name    string
		raw     []byte
		segSize int
		want    [][]byte
	}{
		{"empty", nil, 1400, nil},
		{"no-coalescing-zero", join(seg(700)), 0, seg(700)},
		{"no-coalescing-negative", join(seg(700)), -4, seg(700)},
		{"single-segment-exact", join(seg(1400)), 1400, seg(1400)},
		{"segsize-above-train", join(seg(900)), 1400, seg(900)},
		{"even-train", join(seg(500, 500, 500)), 500, seg(500, 500, 500)},
		{"ragged-tail", join(seg(500, 500, 120)), 500, seg(500, 500, 120)},
		{"tail-one-byte", join(seg(500, 500, 1)), 500, seg(500, 500, 1)},
		{"segsize-one", []byte{9, 9, 9}, 1, [][]byte{{9}, {9}, {9}}},
		// A corrupt control message claiming a huge segment must deliver
		// the buffer whole rather than mis-split or crash.
		{"corrupt-huge-segsize", join(seg(500, 500)), 1 << 30, [][]byte{join(seg(500, 500))}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got [][]byte
			splitSegments(tc.raw, tc.segSize, nil, time.Time{}, func(p []byte, _ net.Addr, _ time.Time) {
				if len(p) == 0 {
					t.Fatal("splitter emitted an empty packet")
				}
				got = append(got, append([]byte(nil), p...))
			})
			if len(got) != len(tc.want) {
				t.Fatalf("got %d packets, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if !bytes.Equal(got[i], tc.want[i]) {
					t.Fatalf("packet %d: got %d bytes %v..., want %d bytes", i, len(got[i]), got[i][:min(4, len(got[i]))], len(tc.want[i]))
				}
			}
		})
	}
}

// FuzzSplitSegments hammers the splitter with arbitrary trains and
// segment sizes: the reassembled output must always equal the input
// byte-for-byte (unless the buffer was delivered whole), with no empty
// packets and no packet longer than the claimed segment size.
func FuzzSplitSegments(f *testing.F) {
	f.Add([]byte("hello world, this is a train"), 5)
	f.Add([]byte{}, 0)
	f.Add(bytes.Repeat([]byte{0xAB}, 3000), 1400)
	f.Add(bytes.Repeat([]byte{0x01}, 64), -7)
	f.Fuzz(func(t *testing.T, raw []byte, segSize int) {
		var rejoined []byte
		count := 0
		splitSegments(raw, segSize, nil, time.Time{}, func(p []byte, _ net.Addr, _ time.Time) {
			if len(p) == 0 {
				t.Fatal("empty packet emitted")
			}
			if segSize > 0 && segSize < len(raw) && len(p) > segSize {
				t.Fatalf("packet of %d bytes exceeds segment size %d", len(p), segSize)
			}
			rejoined = append(rejoined, p...)
			count++
		})
		if len(raw) == 0 {
			if count != 0 {
				t.Fatal("packets emitted from an empty train")
			}
			return
		}
		if !bytes.Equal(rejoined, raw) {
			t.Fatal("rejoined train differs from input")
		}
	})
}

// offloadTransfer runs one checksummed bulk transfer with the given
// config and returns the two checksums plus the sender's stats.
func offloadTransfer(t *testing.T, cfg *Config, size int) (want, got [32]byte, st Stats) {
	t.Helper()
	cli, srv, _ := pair(t, cfg)
	data := make([]byte, size)
	rand.New(rand.NewSource(42)).Read(data)
	want = sha256.Sum256(data)
	go func() {
		if _, err := cli.Write(data); err != nil {
			t.Error(err)
		}
	}()
	h := sha256.New()
	if _, err := io.CopyN(h, srv, int64(size)); err != nil {
		t.Fatal(err)
	}
	copy(got[:], h.Sum(nil))
	return want, got, cli.Stats()
}

// TestOffloadFallbackWireIdentity proves the degraded paths carry the
// same bytes as the offloaded one: the transfer succeeds with identical
// checksums whether offload is on, disabled by configuration, or denied
// by a failed capability probe — and the offload counters are exactly
// zero whenever the bare path was forced.
func TestOffloadFallbackWireIdentity(t *testing.T) {
	const size = 2 << 20
	modes := []struct {
		name     string
		cfg      Config
		forceOff bool
		wantBare bool
	}{
		{"offload-default", Config{}, false, false},
		{"config-disabled", Config{DisableOffload: true}, false, true},
		{"probe-failed", Config{}, true, true},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			if m.forceOff {
				forceOffloadOff.Store(true)
				defer forceOffloadOff.Store(false)
			}
			cfg := m.cfg
			want, got, st := offloadTransfer(t, &cfg, size)
			if want != got {
				t.Fatal("checksum mismatch: the wire stream was corrupted")
			}
			if m.wantBare {
				if st.GSOEnabled {
					t.Error("GSO reported enabled on a forced-bare socket")
				}
				if st.GSOSends != 0 || st.GSOSegments != 0 {
					t.Errorf("bare path recorded GSO activity: sends=%d segments=%d", st.GSOSends, st.GSOSegments)
				}
				if st.GROReads != 0 || st.GROSegments != 0 {
					t.Errorf("bare path recorded GRO activity: reads=%d segments=%d", st.GROReads, st.GROSegments)
				}
			} else if st.GSOEnabled && st.GSOSends == 0 {
				t.Error("GSO enabled but no segment train was ever sent during a bulk transfer")
			}
			if st.SendSyscalls == 0 {
				t.Error("send syscall counter never advanced")
			}
		})
	}
}

// TestGSOSmoke asserts the offloaded datapath really engages on capable
// kernels: a bulk transfer must produce multi-segment UDP_SEGMENT trains
// and amortize syscalls well below one per packet. Skipped — not failed —
// when the capability probe says no, so CI stays green on kernels or
// container runtimes without UDP segmentation offload.
func TestGSOSmoke(t *testing.T) {
	const size = 4 << 20
	cli, srv, _ := pair(t, nil)
	data := make([]byte, size)
	rand.New(rand.NewSource(42)).Read(data)
	want := sha256.Sum256(data)
	go func() {
		if _, err := cli.Write(data); err != nil {
			t.Error(err)
		}
	}()
	h := sha256.New()
	if _, err := io.CopyN(h, srv, int64(size)); err != nil {
		t.Fatal(err)
	}
	var got [32]byte
	copy(got[:], h.Sum(nil))
	if want != got {
		t.Fatal("checksum mismatch")
	}
	st := cli.Stats()
	if !st.GSOEnabled {
		t.Skip("kernel/socket does not offer UDP_SEGMENT; nothing to smoke-test")
	}
	if st.GSOSends == 0 {
		t.Fatal("GSO enabled but no segment train was sent")
	}
	if st.GSOSegments <= st.GSOSends {
		t.Fatalf("trains carry no amortization: %d segments over %d sends", st.GSOSegments, st.GSOSends)
	}
	t.Logf("GSO: %d trains, %d segments (%.1f segs/train); %d send syscalls for %d data packets",
		st.GSOSends, st.GSOSegments, float64(st.GSOSegments)/float64(st.GSOSends),
		st.SendSyscalls, st.PktsSent)
	// GRO coalescing on the receive side is kernel-discretionary (timing
	// dependent even on loopback), so it is reported, not asserted.
	sst := srv.Stats()
	t.Logf("server GRO: %d coalesced reads, %d segments recovered", sst.GROReads, sst.GROSegments)
}

// TestReusePortShardsStress races many private-socket clients against a
// 4-shard SO_REUSEPORT listener group: the kernel spreads the flows
// across the shard sockets by source-port hash while every transfer is
// checksummed end to end. Run with -race; skipped where socket groups
// are unsupported.
func TestReusePortShardsStress(t *testing.T) {
	if !reusePortSupported {
		t.Skip("SO_REUSEPORT socket groups are Linux-only")
	}
	flows := 64
	if testing.Short() {
		flows = 16
	}
	const perFlow = 64 << 10
	cfg := &Config{
		ReusePortShards:  4,
		SndBuf:           64,
		RcvBuf:           128,
		PerfHistory:      -1,
		PeerDeathTimeout: 60 * time.Second,
		HandshakeTimeout: 60 * time.Second,
	}
	ln, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if len(ln.shards) != 3 {
		t.Fatalf("listener has %d shard muxes, want 3 beyond the primary", len(ln.shards))
	}

	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c *Conn) {
				buf := make([]byte, perFlow)
				if _, err := io.ReadFull(c, buf); err != nil {
					return
				}
				c.Write(buf) //nolint:errcheck
			}(c)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, flows)
	conns := make([]*Conn, flows)
	for i := 0; i < flows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Dial gives each client its own socket and thus its own source
			// port — distinct 4-tuples are what the kernel hashes over.
			c, err := Dial(ln.Addr().String(), nil)
			if err != nil {
				errs <- fmt.Errorf("flow %d: dial: %w", i, err)
				return
			}
			conns[i] = c
			data := make([]byte, perFlow)
			rand.New(rand.NewSource(int64(i))).Read(data)
			want := sha256.Sum256(data)
			go c.Write(data) //nolint:errcheck
			h := sha256.New()
			if _, err := io.CopyN(h, c, perFlow); err != nil {
				errs <- fmt.Errorf("flow %d: read: %w", i, err)
				return
			}
			var got [32]byte
			copy(got[:], h.Sum(nil))
			if got != want {
				errs <- fmt.Errorf("flow %d: checksum mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The kernel must actually have spread the flows: with 64 random
	// source ports over 4 sockets, all landing on one shard means the
	// group never formed.
	busy := 0
	for _, m := range append([]*Mux{ln.m}, ln.shards...) {
		m.mu.Lock()
		if len(m.conns) > 0 {
			busy++
		}
		m.mu.Unlock()
	}
	if busy < 2 {
		t.Errorf("all flows landed on %d shard(s); SO_REUSEPORT spread did not happen", busy)
	}
	for _, c := range conns {
		if c != nil {
			c.Close() //nolint:errcheck
		}
	}
}

// TestSendFileZC checks the zero-copy file path end to end: a mapped
// file arrives bit-identical through RecvFile, and the degenerate cases
// (empty file) fall back to the copying path without error.
func TestSendFileZC(t *testing.T) {
	const size = 3<<20 + 12345 // deliberately not a packet multiple
	dir := t.TempDir()
	path := dir + "/payload.bin"
	data := make([]byte, size)
	rand.New(rand.NewSource(7)).Read(data)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cli, srv, _ := pair(t, nil)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	sent := make(chan error, 1)
	var n int64
	go func() {
		var err error
		n, err = cli.SendFileZC(f)
		sent <- err
	}()
	var out bytes.Buffer
	got, err := srv.RecvFile(&out)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-sent; err != nil {
		t.Fatal(err)
	}
	if n != size || got != size {
		t.Fatalf("sent %d / received %d bytes, want %d", n, got, size)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("file corrupted in transit")
	}

	t.Run("empty-file", func(t *testing.T) {
		empty := dir + "/empty.bin"
		if err := os.WriteFile(empty, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		cli, srv, _ := pair(t, nil)
		ef, err := os.Open(empty)
		if err != nil {
			t.Fatal(err)
		}
		defer ef.Close()
		done := make(chan error, 1)
		go func() {
			_, err := cli.SendFileZC(ef)
			done <- err
		}()
		var out bytes.Buffer
		if got, err := srv.RecvFile(&out); err != nil || got != 0 {
			t.Fatalf("RecvFile = (%d, %v), want (0, nil)", got, err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
