// Package udt is a pure-Go implementation of UDT, the UDP-based Data
// Transport protocol of Gu, Hong and Grossman ("Experiences in Design and
// Implementation of a High Performance Transport Protocol", SC '04): a
// reliable, connection-oriented, duplex stream transport built entirely in
// user space on top of UDP, designed for bulk data transfer over networks
// whose bandwidth-delay product defeats TCP.
//
// The API mirrors net's: Listen/Accept on one side, Dial on the other,
// and a Conn with Read/Write/Close plus the paper's file-transfer
// extensions SendFile and RecvFile (§4.7).
//
//	ln, _ := udt.Listen("127.0.0.1:9000", nil)
//	go func() { c, _ := ln.Accept(); io.Copy(io.Discard, c) }()
//	c, _ := udt.Dial("127.0.0.1:9000", nil)
//	c.Write(data)
//
// Protocol mechanics — timer-based selective acknowledgement, explicit
// negative acknowledgement with compressed loss ranges, AIMD rate control
// with receiver-based packet-pair bandwidth estimation, the dynamic flow
// window W = AS·(SYN+RTT), loss-event freezes — live in internal/core and
// are shared verbatim with the repository's network simulator.
package udt

import (
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
	"runtime"
	"time"

	"udt/internal/congestion"
	"udt/internal/core"
	"udt/internal/timing"
	"udt/internal/trace"
)

// Config carries the tunable parameters of a UDT endpoint. The zero value
// gives the paper's defaults.
type Config struct {
	// MSS is the UDT packet size in bytes (header + payload) carried in one
	// UDP datagram. Default 1472 (Ethernet MTU minus IP/UDP headers). §6
	// and Fig. 15: the optimum is the path MTU.
	MSS int
	// SYN is the rate-control and acknowledgement interval. Default 10 ms.
	SYN time.Duration
	// MaxFlowWindow bounds unacknowledged packets. Default 25600.
	MaxFlowWindow int
	// SndBuf and RcvBuf are the buffer sizes in packets. Default 8192 each.
	SndBuf, RcvBuf int
	// HandshakeTimeout bounds connection setup. Default 3 s.
	HandshakeTimeout time.Duration
	// PeerDeathTimeout is how long without any packet from the peer before
	// the connection is declared broken (§3.3's EXP timer; death also
	// requires 16 consecutive EXP expirations). Default 5 s.
	PeerDeathTimeout time.Duration
	// MinEXPInterval floors the EXP timer period. Default 300 ms. Lowering
	// it (with PeerDeathTimeout) makes failure detection proportionally
	// faster — useful in tests and emulated networks.
	MinEXPInterval time.Duration
	// Rand, when non-nil, supplies the handshake randomness (initial
	// sequence numbers and connection IDs), making connection setup
	// reproducible. Nil uses the process-global generator. The source is
	// only read during Dial/Accept, never on the data path.
	Rand *rand.Rand
	// Ledger, when non-nil and enabled, attributes wall time to protocol
	// cost centers (Table 3 / Fig. 14).
	Ledger *timing.Ledger
	// PerfHistory is the capacity in records of the perfmon ring buffer
	// behind Conn.Perf. Default 512 (≈5 s of history at the default SYN and
	// PerfEverySYN); negative disables per-connection telemetry entirely.
	PerfHistory int
	// PerfEverySYN is the telemetry sampling cadence: one PerfRecord every
	// N SYN intervals. Default 1 (a sample every 10 ms at the default SYN).
	PerfEverySYN int
	// Trace, when non-nil, receives every PerfRecord in addition to the
	// Conn.Perf ring — e.g. a trace.CSVSink streaming to a file. Record is
	// called under the connection lock; it must not block or call back into
	// the Conn.
	Trace TraceSink
	// CC selects the congestion controller for connections using this
	// Config: the factory is invoked once per connection. Nil selects the
	// paper's native UDT AIMD (§3.3). Resolve a built-in law by name with
	// CongestionControl ("native", "ctcp", "scalable", "hstcp"). Both ends
	// choose independently — the law is sender-side state, not negotiated.
	CC CongestionFactory
	// BatchSize is how many datagrams one batched syscall moves: the
	// recvmmsg slot count on the read path, the sendmmsg batch on the write
	// path, and the upper bound on the data burst one sender-lock
	// acquisition claims (which is also the segment train one GSO send
	// carries). Default 16; values are clamped to [1, 64], and the data
	// burst is further capped so a full train fits in one 64 KB
	// super-datagram.
	BatchSize int
	// ReusePortShards, when > 1, makes Listen open that many SO_REUSEPORT
	// sockets bound to the same address — each with its own mux shard and
	// read loop — so the kernel fans incoming flows across CPUs instead of
	// serializing them on one socket lock. Linux only; elsewhere (and on
	// transports that are not UDP sockets) it silently degrades to one
	// socket. Default 1; clamped to [1, 64]. Each flow's datagrams hash to
	// one shard by 4-tuple, so per-flow ordering is unaffected.
	ReusePortShards int
	// PoolShards is how many connection-scheduler shards a Mux runs: worker
	// goroutines, each owning a hierarchical timing wheel and a run queue,
	// that service every flow on the shared socket (see internal/timerwheel
	// and DESIGN.md §"Scaling to 100k flows"). Flows are passive state
	// machines; goroutine count is O(PoolShards), not O(flows). Default
	// GOMAXPROCS; clamped to [1, 64]. Dedicated-socket connections (Dial /
	// DialOn) always use one private shard regardless of this setting.
	PoolShards int
	// DisableOffload turns off UDP segmentation offload for endpoints using
	// this Config: no UDP_SEGMENT sends, no UDP_GRO receives. The stack
	// then uses the plain sendmmsg/recvmmsg batching. Offload is also
	// disabled automatically when the kernel or socket does not support it
	// (the capability is probed once per socket).
	DisableOffload bool
	// PSK, when non-empty, turns on Secure UDT: every handshake this
	// endpoint sends carries an HMAC-SHA256 authenticator keyed from the
	// pre-shared key, listeners challenge unknown sources with a stateless
	// cookie before allocating any connection state, and authenticated
	// peers get a sealed control channel (sequenced and replay-protected —
	// a spoofed shutdown or injected ACK is dropped, not obeyed). Both
	// ends must configure the same key, at least 16 bytes of it. See
	// DESIGN.md §"Secure UDT" for the key schedule and threat model.
	PSK []byte
	// AllowUnauth lets a PSK-configured endpoint negotiate down to the
	// clear protocol when the peer does not authenticate: a listener
	// accepts paper-era requests, a dialer accepts paper-era responses.
	// Off (the default, with PSK set), unauthenticated peers are refused:
	// listeners drop their requests silently and dials fail.
	AllowUnauth bool
	// AEAD additionally seals the data channel (ChaCha20-Poly1305, keys
	// derived per connection and direction from PSK plus the handshake
	// nonces): payloads are encrypted in place on the send path's burst
	// arena and authenticated by a 16-byte tag carved out of each
	// packet's payload budget, so wire datagrams stay exactly MSS and the
	// 0 allocs/packet invariant holds with crypto on. Effective only with
	// PSK set; the channel is sealed when both ends request it.
	AEAD bool

	// sockID is this endpoint's socket ID on a shared (multiplexed)
	// socket, filled in by Mux before the connection is wired; zero for a
	// private socket. It flows into the engine (and perf records) via
	// coreConfig.
	sockID int32
}

// Validate rejects configurations that would misbehave silently: negative
// or nonsensical sizes, intervals and timeouts. It checks the fields as
// given — zero always means "use the default" and passes. Dial/Listen (and
// their *On variants) call it before touching the network, so a bad Config
// fails fast with a descriptive error instead of a stalled transfer.
func (c *Config) Validate() error {
	if c.MSS < 0 {
		return fmt.Errorf("udt: config: MSS %d is negative", c.MSS)
	}
	if c.MSS > 0 && c.MSS < 96 {
		return fmt.Errorf("udt: config: MSS %d below the 96-byte minimum", c.MSS)
	}
	if c.MSS > 65507 {
		return fmt.Errorf("udt: config: MSS %d exceeds the 65507-byte UDP payload limit", c.MSS)
	}
	if c.SYN < 0 {
		return fmt.Errorf("udt: config: SYN interval %v is negative", c.SYN)
	}
	if c.SYN > 0 && c.SYN < 100*time.Microsecond {
		return fmt.Errorf("udt: config: SYN interval %v below 100µs", c.SYN)
	}
	if c.MaxFlowWindow < 0 {
		return fmt.Errorf("udt: config: MaxFlowWindow %d is negative", c.MaxFlowWindow)
	}
	if c.SndBuf < 0 || c.RcvBuf < 0 {
		return fmt.Errorf("udt: config: buffer sizes must be non-negative (SndBuf %d, RcvBuf %d)", c.SndBuf, c.RcvBuf)
	}
	if c.HandshakeTimeout < 0 {
		return fmt.Errorf("udt: config: HandshakeTimeout %v is negative", c.HandshakeTimeout)
	}
	if c.PeerDeathTimeout < 0 {
		return fmt.Errorf("udt: config: PeerDeathTimeout %v is negative", c.PeerDeathTimeout)
	}
	if c.MinEXPInterval < 0 {
		return fmt.Errorf("udt: config: MinEXPInterval %v is negative", c.MinEXPInterval)
	}
	if c.PerfEverySYN < 0 {
		return fmt.Errorf("udt: config: PerfEverySYN %d is negative", c.PerfEverySYN)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("udt: config: BatchSize %d is negative", c.BatchSize)
	}
	if c.ReusePortShards < 0 {
		return fmt.Errorf("udt: config: ReusePortShards %d is negative", c.ReusePortShards)
	}
	if c.PoolShards < 0 {
		return fmt.Errorf("udt: config: PoolShards %d is negative", c.PoolShards)
	}
	if len(c.PSK) > 0 && len(c.PSK) < 16 {
		return fmt.Errorf("udt: config: PSK is %d bytes, below the 16-byte minimum", len(c.PSK))
	}
	if c.AEAD && len(c.PSK) == 0 {
		return fmt.Errorf("udt: config: AEAD requires a PSK")
	}
	if c.AllowUnauth && len(c.PSK) == 0 {
		return fmt.Errorf("udt: config: AllowUnauth is meaningless without a PSK")
	}
	return nil
}

// randInt31 draws handshake randomness from Config.Rand, falling back to
// the process-global generator.
func (c *Config) randInt31() int32 {
	if c.Rand != nil {
		return c.Rand.Int31()
	}
	return randv2.Int32()
}

func (c *Config) fill() {
	if c.MSS == 0 {
		c.MSS = 1472
	}
	if c.MSS < 96 {
		c.MSS = 96
	}
	if c.SYN == 0 {
		c.SYN = 10 * time.Millisecond
	}
	if c.MaxFlowWindow == 0 {
		c.MaxFlowWindow = 25600
	}
	if c.SndBuf == 0 {
		c.SndBuf = 8192
	}
	if c.RcvBuf == 0 {
		c.RcvBuf = 8192
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 3 * time.Second
	}
	if c.PerfHistory == 0 {
		c.PerfHistory = 512
	}
	if c.PerfEverySYN == 0 {
		c.PerfEverySYN = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.BatchSize > 64 {
		c.BatchSize = 64
	}
	if c.ReusePortShards == 0 {
		c.ReusePortShards = 1
	}
	if c.ReusePortShards > 64 {
		c.ReusePortShards = 64
	}
	if c.PoolShards == 0 {
		c.PoolShards = runtime.GOMAXPROCS(0)
	}
	if c.PoolShards > 64 {
		c.PoolShards = 64
	}
}

func (c *Config) coreConfig(isn int32) core.Config {
	return core.Config{
		MSS:           c.MSS,
		SYN:           c.SYN.Microseconds(),
		ISN:           isn,
		MaxFlowWindow: int32(c.MaxFlowWindow),
		RecvBufPkts:   int32(c.RcvBuf),
		MinEXP:        c.MinEXPInterval.Microseconds(),
		PeerDeathTime: c.PeerDeathTimeout.Microseconds(),
		SockID:        c.sockID,
		CC:            c.CC,
	}
}

// Stats is a snapshot of a connection's protocol counters.
type Stats struct {
	core.Stats
	RTT          time.Duration
	SendRateMbps float64 // current paced sending rate
	BytesSent    int64
	BytesRecv    int64
	// UDPRcvBufBytes and UDPSndBufBytes are the kernel socket buffer sizes
	// the OS actually granted (which may be below what was requested — see
	// tuneUDPBuffers). Zero when the connection runs over a non-UDP
	// transport such as netem.
	UDPRcvBufBytes int
	UDPSndBufBytes int
	// MuxUnknownDest and MuxShortDatagram count datagrams the shared
	// socket's demultiplexer dropped — destination socket ID (or peer
	// address) not in its tables, and datagrams too short to classify.
	// They are socket-wide totals (every flow on the same Mux reports the
	// same values); zero when the connection has a private socket.
	MuxUnknownDest   uint64
	MuxShortDatagram uint64
	// GSOEnabled reports whether the send path can hand the kernel
	// segmentation-offload trains (UDP_SEGMENT) on this connection's
	// socket: the capability was probed successfully and offload was not
	// disabled. When false every datagram costs its own sendmmsg slot.
	GSOEnabled bool
	// GSOSends counts segmentation-offload sends — each one syscall
	// carrying a train of MSS-sized data packets — and GSOSegments the
	// packets those trains carried. Their ratio is the send-side
	// amortization factor.
	GSOSends    int64
	GSOSegments int64
	// SendSyscalls counts every send syscall the connection issued (plain
	// writes, sendmmsg batches, and GSO trains each count one).
	// SendSyscalls / (PktsSent + retransmissions + control traffic) is the
	// syscalls-per-packet figure the wire-rate datapath drives toward zero.
	SendSyscalls int64
	// GROReads counts receive syscall deliveries on the shared socket that
	// arrived as kernel-coalesced trains (UDP_GRO), and GROSegments the
	// packets recovered from them. Like the mux drop counters they are
	// socket-wide totals; zero on a private or non-UDP transport.
	GROReads    uint64
	GROSegments uint64
	// Goroutines is the process goroutine count sampled when this snapshot
	// was taken, and PeakGoroutines the high-water mark observed at
	// scheduler park points and connection setup since process start. With
	// the shared connection scheduler the peak stays O(PoolShards +
	// sockets) no matter how many flows are resident — the 100k-flow
	// regime's key invariant (see DESIGN.md §"Scaling to 100k flows").
	Goroutines     int
	PeakGoroutines int
	// AuthRejects counts traffic refused by Secure UDT authentication:
	// handshakes the shared socket dropped pre-connection (missing or bad
	// authenticator, with AllowUnauth off) plus this connection's sealed
	// packets that failed to open. The socket-wide part is shared by every
	// flow on the same Mux, like MuxUnknownDest.
	AuthRejects uint64
	// CookieSent counts stateless cookie challenges the shared socket
	// issued to handshake requests that had not yet proven their source
	// address — under a spoofed-source flood this grows while no
	// connection state is allocated. Socket-wide; zero on a private
	// socket (dialed connections never answer requests).
	CookieSent uint64
	// ReplayDrops counts authenticated control packets this connection
	// dropped because their sequence number was already accepted — e.g.
	// an off-path attacker re-injecting a captured shutdown.
	ReplayDrops uint64
	// CCName names the congestion-control law driving the sender
	// ("native", "ctcp", "scalable", "hstcp").
	CCName string
	// CCPeriodUs is the controller's live packet sending period in µs;
	// 0 means unpaced (slow start).
	CCPeriodUs float64
	// CCWindowPkts is the controller's live congestion window in packets.
	CCWindowPkts float64
}

// PerfRecord is one perfmon telemetry sample; see internal/trace for the
// field-by-field documentation. Conn.Perf returns the recent history and
// Config.Trace streams records as they are produced.
type PerfRecord = trace.PerfRecord

// TraceSink consumes PerfRecords; see internal/trace.Sink.
type TraceSink = trace.Sink

// CongestionFactory constructs one fresh congestion controller per
// connection; see internal/congestion for the Controller contract.
type CongestionFactory = congestion.Factory

// CongestionControl resolves a built-in congestion-control law by name for
// Config.CC: "native" (the paper's UDT AIMD, also the default for the
// empty string), "ctcp" (TCP-Reno-style AIMD), "scalable" (Scalable TCP
// MIMD) or "hstcp" (RFC 3649 HighSpeed TCP). Unknown names error.
func CongestionControl(name string) (CongestionFactory, error) {
	return congestion.New(name)
}

// CongestionControls lists the built-in congestion controller names.
func CongestionControls() []string { return congestion.Names() }
