package udt

import (
	"fmt"
	"net"
	"time"

	"udt/internal/packet"
	"udt/internal/secure"
	"udt/internal/seqno"
)

// PacketConn is the datagram transport a UDT endpoint runs over. It is the
// subset of net.PacketConn the stack needs, so a *net.UDPConn satisfies it
// directly; internal/netem provides an in-process implementation with
// configurable loss, delay, reordering, corruption and partitions for
// deterministic fault-injection testing. Implementations must allow
// concurrent ReadFrom and WriteTo calls.
type PacketConn interface {
	// ReadFrom reads one datagram, reporting its source address.
	ReadFrom(p []byte) (n int, addr net.Addr, err error)
	// WriteTo sends one datagram to addr.
	WriteTo(p []byte, addr net.Addr) (n int, err error)
	// Close tears the transport down, unblocking pending reads.
	Close() error
	// LocalAddr returns the local transport address.
	LocalAddr() net.Addr
	// SetReadDeadline bounds future ReadFrom calls; expiry must surface as
	// a net.Error whose Timeout() is true.
	SetReadDeadline(t time.Time) error
}

// addrEqual reports whether two transport addresses denote the same peer.
// It is symmetric in all cases:
//
//   - interface identity (netem endpoints hand out one *Addr for life);
//   - two *net.UDPAddr compare by port and net.IP.Equal, so an
//     IPv4-in-IPv6 mapped address (::ffff:127.0.0.1) equals its IPv4 form
//     regardless of which side of the comparison it appears on;
//   - otherwise — mixed *net.UDPAddr vs another implementation, or two
//     non-UDP implementations — by Network() and String() form. A non-UDP
//     addr can therefore deliberately impersonate a UDP peer by reporting
//     network "udp" and the same host:port string (proxied transports rely
//     on this), but zone-less string forms of mapped addresses still match
//     because net.IP.String() prints them in dotted-quad form.
func addrEqual(a, b net.Addr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	au, aok := a.(*net.UDPAddr)
	bu, bok := b.(*net.UDPAddr)
	if aok && bok {
		return udpAddrEqual(au, bu)
	}
	return a.Network() == b.Network() && a.String() == b.String()
}

// DialOn performs the UDT client handshake to raddr over the supplied
// transport and returns the established connection. It is Dial for
// arbitrary datagram fabrics: pass a *net.UDPConn for a custom-tuned
// socket, or a netem endpoint for fault-injection tests.
//
// DialOn takes ownership of pc: it is closed when the returned Conn closes,
// and also when the handshake fails. cfg may be nil for defaults.
func DialOn(pc PacketConn, raddr net.Addr, cfg *Config) (*Conn, error) {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	if err := c.Validate(); err != nil {
		pc.Close() //nolint:errcheck
		return nil, err
	}
	c.fill()

	isn := c.randInt31() & seqno.Max
	connID := c.randInt31()
	req := packet.Handshake{
		Version:    packet.Version,
		SockType:   0,
		InitSeq:    isn,
		MSS:        int32(c.MSS),
		FlowWindow: int32(c.MaxFlowWindow),
		ReqType:    packet.HSRequest,
		ConnID:     connID,
	}
	var keys *secure.Keys
	if len(c.PSK) > 0 {
		keys = secure.DeriveKeys(c.PSK)
		req.SecFlags = c.secFlags()
		fillNonce(&req.Nonce, c.randInt31)
	}
	buf := make([]byte, hsBufSize)
	n := 0
	encodeReq := func() error {
		if keys != nil {
			if err := signHandshakeHS(keys, &req, nil); err != nil {
				return err
			}
		}
		var err error
		n, err = packet.EncodeHandshake(buf, &req, 0)
		return err
	}
	if err := encodeReq(); err != nil {
		pc.Close() //nolint:errcheck
		return nil, err
	}

	// Send the request, retrying every 250 ms until the response arrives.
	// On a secure dial a cookie challenge restarts the request with the
	// cookie echoed, and a response failing authentication is ignored.
	deadline := time.Now().Add(c.HandshakeTimeout)
	rbuf := make([]byte, 65536)
	var resp packet.Handshake
	for {
		if time.Now().After(deadline) {
			pc.Close() //nolint:errcheck
			return nil, ErrTimeout
		}
		if _, err := pc.WriteTo(buf[:n], raddr); err != nil {
			pc.Close() //nolint:errcheck
			return nil, fmt.Errorf("udt: handshake: %w", err)
		}
		pc.SetReadDeadline(time.Now().Add(250 * time.Millisecond)) //nolint:errcheck
		rn, from, err := pc.ReadFrom(rbuf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue // retry the handshake
			}
			pc.Close() //nolint:errcheck
			return nil, fmt.Errorf("udt: handshake: %w", err)
		}
		if !addrEqual(from, raddr) || !packet.IsControl(rbuf[:rn]) {
			continue
		}
		ctrl, err := packet.DecodeControl(rbuf[:rn])
		if err != nil || ctrl.Type != packet.TypeHandshake {
			continue
		}
		hs, err := packet.DecodeHandshake(ctrl)
		if err != nil || hs.ConnID != connID {
			continue
		}
		if keys != nil && hs.ReqType == packet.HSCookie {
			req.Cookie = hs.Cookie
			if err := encodeReq(); err != nil {
				pc.Close() //nolint:errcheck
				return nil, err
			}
			continue // the loop resends the cookie-bearing request
		}
		if hs.ReqType != packet.HSResponse {
			continue
		}
		if keys != nil {
			if !hs.Sec() {
				if !c.AllowUnauth {
					pc.Close() //nolint:errcheck
					return nil, errAuthRequired
				}
			} else if !verifyHandshakeHS(keys, &hs, req.Nonce[:]) {
				continue // forged or corrupt; keep waiting for the real one
			}
		}
		resp = hs
		break
	}
	pc.SetReadDeadline(time.Time{}) //nolint:errcheck

	// Negotiate downwards.
	if int(resp.MSS) < c.MSS && resp.MSS >= 96 {
		c.MSS = int(resp.MSS)
	}
	if int(resp.FlowWindow) < c.MaxFlowWindow && resp.FlowWindow > 0 {
		c.MaxFlowWindow = int(resp.FlowWindow)
	}

	var sec *secure.Session
	if keys != nil && resp.Sec() {
		sec = secure.NewSession(keys, req.Nonce[:], resp.Nonce[:], true, isn, resp.InitSeq,
			grantAEAD(req.SecFlags, resp.SecFlags))
	}

	// A dedicated socket carries exactly one flow, so it gets a degenerate
	// single-shard scheduler of its own; Conn.Close stops it.
	pool := newConnPool(1, c.Ledger)
	conn := newConn(c, newOwnedSock(pc, !c.DisableOffload), func() { pc.Close() }, pc.LocalAddr(), raddr, isn, resp.InitSeq, pool.shard(), sec)
	conn.ownPool = pool
	go dialedReadLoop(pc, conn)
	return conn, nil
}

// ListenOn starts a UDT listener on the supplied transport. It is Listen
// for arbitrary datagram fabrics; all accepted connections share pc,
// demultiplexed by socket ID (multiplexing clients) or peer address
// (paper-era clients). ListenOn takes ownership of pc — it is closed by
// Listener.Close — and cfg may be nil for defaults.
func ListenOn(pc PacketConn, cfg *Config) (*Listener, error) {
	return listenOn(pc, cfg, 0, 0)
}

// listenOn builds a Mux the listener owns; the socket buffer sizes must
// be known before the read loop starts, since accepted connections copy
// them.
func listenOn(pc PacketConn, cfg *Config, rcvBuf, sndBuf int) (*Listener, error) {
	m, err := newMux(pc, cfg, rcvBuf, sndBuf)
	if err != nil {
		return nil, err
	}
	l, err := m.Listen()
	if err != nil {
		m.Close() //nolint:errcheck
		return nil, err
	}
	l.ownsMux = true
	return l, nil
}

// dialedReadLoop feeds a dialed connection from its private transport.
func dialedReadLoop(pc PacketConn, conn *Conn) {
	buf := make([]byte, 65536)
	for i := 0; ; i++ {
		// A bounded read deadline stands in for RCV_TIMEO (§4.8): timers
		// are serviced by the sender loop, so the read may simply retry.
		// Refreshing it only periodically keeps the syscall off the
		// per-packet hot path (§4.1).
		if i%16 == 0 {
			pc.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
		}
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				select {
				case <-conn.closed:
					return
				default:
					continue
				}
			}
			return // transport closed
		}
		if !addrEqual(from, conn.raddr) {
			continue
		}
		conn.handleDatagram(buf[:n])
	}
}
